package deque

import (
	"fmt"
	"sync/atomic"
)

// ChaseLev is a bounded lock-free work-stealing deque after Chase & Lev
// (SPAA'05), adapted to WOOL's bounded-queue discipline. The owner thread
// calls PushBottom and PopBottom; any number of thief threads may call
// StealTop concurrently.
//
// The implementation uses a fixed-capacity circular array (capacity must be
// a power of two). Unlike the original, the array never grows: WOOL task
// queues are statically bounded, and the runtime executes spawns inline when
// the queue is full, which bounds memory and — more importantly for
// Palirria — keeps µ(Q) meaningful.
//
// Memory-model note: every slot is an atomic.Pointer, so a thief that wins
// the CAS on top reads the element with an atomic load that happens-after
// the owner's atomic store in PushBottom. This is stricter than the C11
// original needs, but it is simple, portable, and race-detector-clean.
type ChaseLev[T any] struct {
	top    atomic.Int64 // next index to steal
	bottom atomic.Int64 // next index to push; owner-only writes
	mask   int64
	buf    []atomic.Pointer[T]
}

// NewChaseLev returns a deque with the given capacity (rounded up to a
// power of two, minimum 2).
func NewChaseLev[T any](capacity int) (*ChaseLev[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("deque: capacity %d must be positive", capacity)
	}
	n := 2
	for n < capacity {
		n <<= 1
	}
	return &ChaseLev[T]{mask: int64(n - 1), buf: make([]atomic.Pointer[T], n)}, nil
}

// MustChaseLev is NewChaseLev that panics on error.
func MustChaseLev[T any](capacity int) *ChaseLev[T] {
	d, err := NewChaseLev[T](capacity)
	if err != nil {
		panic(err)
	}
	return d
}

// Cap returns the deque capacity.
func (d *ChaseLev[T]) Cap() int { return len(d.buf) }

// Len returns a snapshot of the number of queued tasks. Concurrent steals
// may make the value stale immediately; Palirria reads it as an estimation
// metric, for which a racy-but-recent snapshot is exactly what the paper's
// runtime reads too.
func (d *ChaseLev[T]) Len() int {
	b := d.bottom.Load()
	t := d.top.Load()
	if n := b - t; n > 0 {
		return int(n)
	}
	return 0
}

// PushBottom appends a task at the bottom. Owner-only. Returns false when
// the deque is full.
func (d *ChaseLev[T]) PushBottom(v *T) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	if b-t >= int64(len(d.buf)) {
		return false
	}
	d.buf[b&d.mask].Store(v)
	d.bottom.Store(b + 1)
	return true
}

// PopBottom removes and returns the most recently pushed task. Owner-only.
func (d *ChaseLev[T]) PopBottom() (*T, bool) {
	b := d.bottom.Load() - 1
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Deque was empty: restore bottom.
		d.bottom.Store(b + 1)
		return nil, false
	}
	v := d.buf[b&d.mask].Load()
	if t != b {
		// More than one element remained; no race with thieves possible.
		return v, true
	}
	// Single element: race against thieves for it via CAS on top.
	won := d.top.CompareAndSwap(t, t+1)
	d.bottom.Store(b + 1)
	if !won {
		return nil, false
	}
	return v, true
}

// BottomIs reports whether the most recently pushed element is v and has
// not (yet) been stolen. Owner-only. The answer may be invalidated by a
// concurrent thief immediately, so callers must re-verify via PopBottom —
// the WOOL sync path does exactly that: peek, conditional pop, and fall
// back to waiting when either step fails.
func (d *ChaseLev[T]) BottomIs(v *T) bool {
	b := d.bottom.Load()
	t := d.top.Load()
	if b <= t {
		return false
	}
	return d.buf[(b-1)&d.mask].Load() == v
}

// StealTop removes and returns the oldest task. Safe for concurrent thieves
// and concurrent with owner operations. Returns (nil, false) when the deque
// is (or appears) empty; a thief that loses a race simply retries its next
// victim, so false negatives only cost one extra probe.
func (d *ChaseLev[T]) StealTop() (*T, bool) {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil, false
	}
	v := d.buf[t&d.mask].Load()
	if !d.top.CompareAndSwap(t, t+1) {
		return nil, false
	}
	return v, true
}
