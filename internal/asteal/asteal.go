// Package asteal implements the ASTEAL estimator of Agrawal, He, Hsu and
// Leiserson ("Adaptive scheduling with parallelism feedback", PPoPP'06;
// expanded in TOCS 2008), the baseline the paper compares Palirria against.
//
// ASTEAL is runtime-specific: it measures the cycles each worker wastes —
// searching for work plus conducting successful steals — sums them over the
// allotment, and compares the sum against a utilization threshold at the
// end of every quantum. Unlike Palirria it works with any victim selection
// policy, and unlike Palirria its criteria describe the allotment's past
// efficiency rather than the work remaining in the queues.
package asteal

import "palirria/internal/core"

// Default parameters from the A-STEAL papers: δ is the utilization
// threshold (a quantum is inefficient when more than (1-δ) of the
// allotment's cycles were wasted is the usual presentation; equivalently
// wasted > (1-δ)·total), and ρ is the responsiveness — the multiplicative
// step applied to the desire.
const (
	// DefaultDelta is the utilization threshold δ.
	DefaultDelta = 0.9
	// DefaultRho is the responsiveness ρ.
	DefaultRho = 2.0
)

// ASteal is the estimator state. It maintains a real-valued desire that
// grows multiplicatively while the workload is efficient and satisfied and
// shrinks multiplicatively while it is inefficient (§3.1):
//
//	inefficient             → desire /= ρ  (decrease)
//	efficient and satisfied → desire *= ρ  (increase)
//	efficient and deprived  → unchanged    (the system is congested)
//
// The workload is deprived when the previous request was not fully granted;
// otherwise it is satisfied.
type ASteal struct {
	// Delta is the utilization threshold δ in (0, 1).
	Delta float64
	// Rho is the responsiveness ρ > 1.
	Rho float64

	desire     float64
	lastDesire int
	granted    int
	started    bool

	// lastInputs records the most recent quantum's classification inputs
	// for Introspect.
	lastInputs struct {
		wasted, total int64
		inefficient   bool
		satisfied     bool
	}
}

var _ core.Estimator = (*ASteal)(nil)
var _ core.Introspector = (*ASteal)(nil)

// New returns an ASTEAL estimator with the default parameters.
func New() *ASteal {
	return &ASteal{Delta: DefaultDelta, Rho: DefaultRho}
}

// Name implements core.Estimator.
func (a *ASteal) Name() string { return "asteal" }

// Estimate implements core.Estimator: classify the ending quantum and step
// the desire.
func (a *ASteal) Estimate(s *core.Snapshot) int {
	cur := s.Allotment.Size()
	if !a.started {
		a.desire = float64(cur)
		a.lastDesire = cur
		a.granted = cur
		a.started = true
	}

	// Sum the wasted cycles over all granted workers and compare against
	// the normalized quantum length: total worker-cycles available this
	// quantum is |allotment| * quantum.
	var wasted int64
	for _, id := range s.Allotment.Members() {
		if ws := s.Workers[id]; ws != nil {
			wasted += ws.WastedCycles
		}
	}
	total := int64(cur) * s.QuantumCycles
	inefficient := total > 0 && float64(wasted) > (1-a.Delta)*float64(total)
	satisfied := a.granted >= a.lastDesire
	a.lastInputs.wasted, a.lastInputs.total = wasted, total
	a.lastInputs.inefficient, a.lastInputs.satisfied = inefficient, satisfied

	switch {
	case inefficient:
		// The workload could not utilize its allotment: shrink the desire.
		// The secondary classification is irrelevant here (§3.1).
		a.desire /= a.Rho
	case satisfied:
		// Efficient and satisfied: the workload used everything it asked
		// for; probe for more.
		a.desire *= a.Rho
	default:
		// Efficient and deprived: the system is probably congested; leave
		// the desire unchanged and re-test next quantum.
	}
	if a.desire < 1 {
		a.desire = 1
	}
	if max := float64(s.Allotment.Mesh().Usable()); a.desire > max {
		a.desire = max
	}
	a.lastDesire = int(a.desire + 0.5)
	return a.lastDesire
}

// Granted implements core.Estimator: record the system's decision for the
// satisfied/deprived classification of the next quantum.
func (a *ASteal) Granted(workers int) { a.granted = workers }

// Desire returns the current real-valued desire (for tests and traces).
func (a *ASteal) Desire() float64 { return a.desire }

// Introspect implements core.Introspector: it exposes the utilization
// inputs behind the last Estimate. Inputs: wasted_cycles, total_cycles,
// inefficient (0/1), satisfied (0/1), desire (the real-valued state),
// delta, rho.
func (a *ASteal) Introspect(s *core.Snapshot) *core.Introspection {
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	in := &core.Introspection{
		Decision: core.DecisionOf(s.Allotment.Size(), a.lastDesire),
		Inputs: map[string]float64{
			"wasted_cycles": float64(a.lastInputs.wasted),
			"total_cycles":  float64(a.lastInputs.total),
			"inefficient":   b2f(a.lastInputs.inefficient),
			"satisfied":     b2f(a.lastInputs.satisfied),
			"desire":        a.desire,
			"delta":         a.Delta,
			"rho":           a.Rho,
		},
	}
	for _, id := range s.Allotment.Members() {
		iw := core.IntrospectedWorker{ID: id}
		if ws := s.Workers[id]; ws != nil {
			iw.QueueLen = ws.QueueLen
			iw.MaxQueueLen = ws.MaxQueueLen
			iw.Busy = ws.Busy
			iw.Draining = ws.Draining
			iw.WastedCycles = ws.WastedCycles
		}
		in.Workers = append(in.Workers, iw)
	}
	return in
}
