package asteal

import (
	"testing"

	"palirria/internal/core"
	"palirria/internal/topo"
)

// snap builds a snapshot with uniform per-worker wasted cycles.
func snap(t testing.TB, d int, wastedPerWorker int64) *core.Snapshot {
	t.Helper()
	m := topo.MustMesh(8, 4)
	m.Reserve(0, 1)
	a, err := topo.NewAllotment(m, 20, d)
	if err != nil {
		t.Fatal(err)
	}
	ws := make(map[topo.CoreID]*core.WorkerSnapshot, a.Size())
	for _, id := range a.Members() {
		ws[id] = &core.WorkerSnapshot{ID: id, WastedCycles: wastedPerWorker}
	}
	return &core.Snapshot{
		Allotment:     a,
		Class:         topo.Classify(a),
		Workers:       ws,
		QuantumCycles: 100000,
	}
}

func TestEfficientSatisfiedIncreases(t *testing.T) {
	a := New()
	// Zero waste: efficient. First call initializes desire to current size
	// and is satisfied by construction -> desire *= rho.
	s := snap(t, 1, 0) // 5 workers
	got := a.Estimate(s)
	cur := 5.0
	want := int(cur*DefaultRho + 0.5)
	if got != want {
		t.Fatalf("Estimate = %d, want %d", got, want)
	}
}

func TestInefficientDecreases(t *testing.T) {
	a := New()
	// Waste everything: with delta=0.8, wasted > 0.2*total -> inefficient.
	s := snap(t, 2, 100000) // every cycle wasted
	got := a.Estimate(s)
	cur := 12.0
	want := int(cur/DefaultRho + 0.5)
	if got != want {
		t.Fatalf("Estimate = %d, want %d", got, want)
	}
}

func TestEfficiencyThresholdBoundary(t *testing.T) {
	a := New()
	// wasted just below (1-delta)*total: still efficient.
	s := snap(t, 1, 9999) // < 0.1 * 100000 per worker
	got := a.Estimate(s)
	if got <= 5 {
		t.Fatalf("Estimate = %d, want increase just below the threshold", got)
	}
	// wasted just above: inefficient.
	b := New()
	if got := b.Estimate(snap(t, 1, 10001)); got >= 5 {
		t.Fatalf("Estimate = %d, want decrease just above the threshold", got)
	}
}

func TestDeprivedHoldsDesire(t *testing.T) {
	a := New()
	s := snap(t, 1, 0)
	d1 := a.Estimate(s) // asks for ~8
	a.Granted(5)        // system grants less: deprived
	// Still efficient but deprived: desire unchanged.
	d2 := a.Estimate(snap(t, 1, 0))
	if d2 != d1 {
		t.Fatalf("deprived desire moved: %d -> %d", d1, d2)
	}
	// Once satisfied again (granted >= desired), it grows.
	a.Granted(d2)
	d3 := a.Estimate(snap(t, 1, 0))
	if d3 <= d2 {
		t.Fatalf("satisfied desire did not grow: %d -> %d", d2, d3)
	}
}

func TestDesireFloorsAtOne(t *testing.T) {
	a := New()
	var got int
	for i := 0; i < 20; i++ {
		got = a.Estimate(snap(t, 1, 100000))
	}
	if got != 1 {
		t.Fatalf("desire floor = %d, want 1", got)
	}
}

func TestDesireCapsAtUsable(t *testing.T) {
	a := New()
	var got int
	for i := 0; i < 30; i++ {
		got = a.Estimate(snap(t, 1, 0))
		a.Granted(got)
	}
	if got != 30 { // 8x4 minus 2 reserved
		t.Fatalf("desire cap = %d, want 30", got)
	}
}

func TestCustomParameters(t *testing.T) {
	a := &ASteal{Delta: 0.5, Rho: 2.0}
	s := snap(t, 1, 60000) // 60% wasted > (1-0.5)=50% -> inefficient
	got := a.Estimate(s)
	if got != 3 { // 5/2 rounded
		t.Fatalf("Estimate = %d, want 3", got)
	}
}

func TestDrainingWorkersExcluded(t *testing.T) {
	// Only granted members are summed; a stray worker entry outside the
	// allotment must not affect the decision.
	a := New()
	s := snap(t, 1, 0)
	s.Workers[topo.CoreID(7)] = &core.WorkerSnapshot{ID: 7, WastedCycles: 1 << 40}
	got := a.Estimate(s)
	if got <= 5 {
		t.Fatalf("non-member waste affected the decision: %d", got)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "asteal" {
		t.Fatal("name wrong")
	}
}

func TestDesireAccessor(t *testing.T) {
	a := New()
	a.Estimate(snap(t, 1, 0))
	if a.Desire() <= 5 {
		t.Fatalf("Desire() = %v, want > 5", a.Desire())
	}
}
