# Palirria cluster image: every cmd/ binary, statically linked (the
# module is stdlib-only), on a scratch base. The default entrypoint is
# the serve daemon; compose overrides it per service to run the router.
FROM golang:1.22 AS build
WORKDIR /src
COPY go.mod ./
COPY . .
RUN CGO_ENABLED=0 go build -trimpath -o /out/ ./cmd/...

FROM scratch
COPY --from=build /out/ /usr/local/bin/
ENTRYPOINT ["/usr/local/bin/palirria-serve"]
