package palirria

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden JSON report")

// TestReportJSONGolden pins the machine-readable report schema byte for
// byte. The simulator is deterministic for a fixed seed, so any diff here
// is either a schema change (update the golden deliberately) or a
// scheduling regression. Refresh with:
//
//	go test . -run ReportJSONGolden -update-golden
func TestReportJSONGolden(t *testing.T) {
	rep, err := RunSim(SimConfig{
		Workload:   "fib",
		Scheduler:  "palirria",
		Quantum:    200_000, // few quanta keep the golden file small
		Seed:       9,
		Introspect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, data, "", "  "); err != nil {
		t.Fatal(err)
	}
	pretty.WriteByte('\n')

	path := filepath.Join("testdata", "report_fib.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, pretty.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(pretty.Bytes(), want) {
		t.Fatalf("report JSON drifted from golden %s:\n--- got ---\n%.2000s\n--- want ---\n%.2000s",
			path, pretty.String(), string(want))
	}
}

// TestReportJSONShape spot-checks the fields downstream tools rely on,
// independent of the golden bytes.
func TestReportJSONShape(t *testing.T) {
	rep, err := RunSim(SimConfig{Workload: "fib", Quantum: 200_000, Introspect: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		ExecCycles int64 `json:"exec_cycles"`
		Workers    map[string]struct {
			Total        int64            `json:"total_cycles"`
			FailedProbes int64            `json:"failed_probes"`
			Cycles       map[string]int64 `json:"cycles"`
		} `json:"workers"`
		EstimatorTrace []struct {
			Estimator string `json:"estimator"`
			Decision  string `json:"decision"`
			Workers   []struct {
				Class string `json:"class"`
			} `json:"workers"`
		} `json:"estimator_trace"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.ExecCycles <= 0 || len(out.Workers) == 0 {
		t.Fatalf("empty report: %+v", out)
	}
	for id, w := range out.Workers {
		if len(w.Cycles) == 0 {
			t.Fatalf("worker %s has no per-category cycles", id)
		}
		var sum int64
		for _, v := range w.Cycles {
			sum += v
		}
		if sum != w.Total {
			t.Fatalf("worker %s cycle categories sum to %d, total is %d", id, sum, w.Total)
		}
	}
	if len(out.EstimatorTrace) == 0 {
		t.Fatal("no estimator snapshots despite Introspect")
	}
	for _, s := range out.EstimatorTrace {
		if s.Estimator != "palirria" {
			t.Fatalf("snapshot estimator = %q", s.Estimator)
		}
		switch s.Decision {
		case "increase", "keep", "decrease":
		default:
			t.Fatalf("snapshot decision = %q", s.Decision)
		}
		if len(s.Workers) == 0 {
			t.Fatal("snapshot has no per-worker introspection")
		}
	}
}
