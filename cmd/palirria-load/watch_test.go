package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestConsumeSSE(t *testing.T) {
	in := ": hello\n\n" +
		"id: 1\nevent: admitted\ndata: {\"seq\":1,\"ts_ns\":5,\"kind\":\"admitted\",\"pool\":\"web\",\"job\":1}\n\n" +
		"event: drop\ndata: {\"dropped\":3,\"total\":3}\n\n"
	var frames []sseFrame
	err := consumeSSE(strings.NewReader(in), func(f sseFrame) error {
		frames = append(frames, f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 3 {
		t.Fatalf("got %d frames, want 3", len(frames))
	}
	if !frames[0].comment || frames[0].data != "hello" {
		t.Fatalf("comment frame: %+v", frames[0])
	}
	if frames[1].event != "admitted" || frames[1].id != "1" {
		t.Fatalf("event frame: %+v", frames[1])
	}
	if frames[2].event != "drop" {
		t.Fatalf("drop frame: %+v", frames[2])
	}
}

func TestConsumeSSERejectsMalformed(t *testing.T) {
	err := consumeSSE(strings.NewReader("event: x\nwhat is this\n\n"), func(sseFrame) error {
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("err = %v, want malformed-line error", err)
	}
}

// stubServe imitates palirria-serve's /events and /status surface.
func stubServe(t *testing.T, frames []string) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		fmt.Fprintf(w, ": stub stream\n\n")
		for _, f := range frames {
			fmt.Fprint(w, f)
		}
		fl.Flush()
		<-r.Context().Done() // hold the stream open until the client stops
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"pools":[{"name":"web","admit_p50_seconds":0.001,"admit_p99_seconds":0.01}]}`)
	})
	return httptest.NewServer(mux)
}

func TestWatcherAccumulatesAndPrints(t *testing.T) {
	ev := func(seq int, kind, extra string) string {
		return fmt.Sprintf("id: %d\nevent: %s\ndata: {\"seq\":%d,\"ts_ns\":1,\"kind\":%q,\"pool\":\"web\"%s}\n\n",
			seq, kind, seq, kind, extra)
	}
	ts := stubServe(t, []string{
		ev(1, "admitted", ",\"job\":1"),
		ev(2, "started", ",\"job\":1"),
		ev(3, "completed", ",\"job\":1"),
		ev(4, "shed", ",\"reason\":\"full\""),
		ev(5, "quantum", ",\"raw\":6,\"desire\":5,\"granted\":4,\"capacity\":8"),
		"event: drop\ndata: {\"dropped\":2,\"total\":2}\n\n",
	})
	defer ts.Close()

	var out bytes.Buffer
	w, err := startWatch(ts.URL, "", time.Hour, time.Hour, &out)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		n := w.frames
		w.mu.Unlock()
		if n >= 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d frames consumed", n)
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.stop(); err != nil {
		t.Fatal(err)
	}
	pw := w.pools["web"]
	if pw == nil || pw.admitted != 1 || pw.completed != 1 || pw.shed != 1 ||
		pw.desire != 5 || pw.granted != 4 || pw.capacity != 8 {
		t.Fatalf("pool counters: %+v", pw)
	}
	if w.drops != 2 {
		t.Fatalf("drops = %d, want 2", w.drops)
	}
	line := out.String()
	if !strings.Contains(line, "final pool=web admitted=1 completed=1 cancelled=0 shed=1 desire=5 allot=4 cap=8 drops=2") {
		t.Fatalf("final table missing:\n%s", line)
	}

	if err := printAdmitQuantiles(ts.URL, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pool web: admit p50=1ms p99=10ms") {
		t.Fatalf("quantile line missing:\n%s", out.String())
	}
}

func TestWatcherFailsOnKindMismatch(t *testing.T) {
	ts := stubServe(t, []string{
		"id: 1\nevent: completed\ndata: {\"seq\":1,\"ts_ns\":1,\"kind\":\"admitted\",\"pool\":\"web\",\"job\":1}\n\n",
	})
	defer ts.Close()
	var out bytes.Buffer
	w, err := startWatch(ts.URL, "", time.Hour, time.Hour, &out)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		bad := w.err != nil
		w.mu.Unlock()
		if bad || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := w.stop(); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("err = %v, want kind-mismatch error", err)
	}
}

// TestWatcherFailsOnSilentStream points the watcher at an /events handler
// that answers the subscription and then goes completely mute — no frames,
// no comment heartbeats. The watchdog must tear the stream down and stop
// must report the stall (palirria-load exits non-zero on it).
func TestWatcherFailsOnSilentStream(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.(http.Flusher).Flush()
		<-r.Context().Done() // stalled: never writes a byte again
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out bytes.Buffer
	w, err := startWatch(ts.URL, "", time.Hour, 150*time.Millisecond, &out)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-w.done:
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired on a silent stream")
	}
	if err := w.stop(); err == nil || !strings.Contains(err.Error(), "silent") {
		t.Fatalf("err = %v, want silent-stream watch-timeout error", err)
	}
}

// TestWatcherHeartbeatsKeepWatchdogQuiet pins the liveness definition:
// comment heartbeats alone — no real events — must keep the watchdog from
// firing for well past the timeout.
func TestWatcherHeartbeatsKeepWatchdogQuiet(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		fl := w.(http.Flusher)
		fl.Flush()
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fmt.Fprint(w, ": heartbeat\n\n")
				fl.Flush()
			case <-r.Context().Done():
				return
			}
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var out bytes.Buffer
	w, err := startWatch(ts.URL, "", time.Hour, 750*time.Millisecond, &out)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-w.done:
		t.Fatal("watchdog killed a stream that was heartbeating")
	case <-time.After(2 * time.Second):
	}
	w.mu.Lock()
	stallErr := w.err
	w.mu.Unlock()
	if stallErr != nil {
		t.Fatalf("watchdog recorded %v against a live stream", stallErr)
	}
	// Heartbeats are liveness, not events: stop still reports the empty run.
	if err := w.stop(); err == nil || !strings.Contains(err.Error(), "no events") {
		t.Fatalf("err = %v, want no-events error", err)
	}
}
