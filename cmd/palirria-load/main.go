// palirria-load is an open-loop load generator for palirria-serve: it
// fires synthetic fork/join jobs at a configured arrival rate through a
// sequence of waves, so the daemon's allotment can be watched growing in
// bursts and shrinking in valleys.
//
// The wave pattern is a comma-separated list of name:rps:duration
// segments, e.g.
//
//	palirria-load -target http://localhost:8077 \
//	    -waves calm:50:1s,burst:400:1s,calm:50:1s
//
// Arrivals are open-loop (a ticker fires requests regardless of how many
// are still outstanding), which is what makes overload and shedding
// observable: a closed-loop client would slow down with the server. At
// the end it prints per-class counts and latency percentiles; the exit
// code is 0 when at least one job completed and nothing failed
// unexpectedly.
//
// With -watch it additionally consumes the server's /events SSE stream
// for the duration of the run, printing a live per-pool table
// (completions, sheds, estimator desire and allotment, dropped events)
// every -watch-interval, a final table at the end, and each pool's
// submit-to-start latency quantiles from /status. A malformed SSE frame
// fails the run.
//
// With -router the waves go through a palirria-router instead of a single
// serve node, and -watch renders the router's live cluster table (peer,
// state, desire, allotment, spare parallelism, admit p99) scraped from
// /cluster instead of the per-pool SSE view.
//
// A target that refuses connections mid-run aborts the remaining waves
// immediately: the run reports the refusal and exits non-zero rather than
// hammering a dead port and burying the cause in a failure count.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

func main() {
	target := flag.String("target", "http://localhost:8077", "palirria-serve base URL")
	router := flag.String("router", "", "palirria-router base URL; submissions go through the cluster and -watch shows the live cluster table")
	tenant := flag.String("tenant", "", "tenant to submit to (empty: server default)")
	waves := flag.String("waves", "calm:50:1s,burst:300:1s,calm:50:1s", "arrival pattern: name:rps:duration,...")
	fanout := flag.Int("fanout", 64, "leaves per job")
	work := flag.Int("work", 20000, "synthetic cycles per leaf")
	batch := flag.Int("batch", 1, "jobs per request via /submit?count= batch admission; each tick still fires one request")
	dag := flag.String("dag", "", "submit structured job graphs through POST /submit-dag using this DAG workload (pipeline, mapreduce) instead of plain fans")
	class := flag.String("class", "", "priority class attached to every submission: low, normal or high (empty: server default)")
	deadline := flag.Duration("deadline", 0, "start deadline attached to every submission, e.g. 50ms (0: none)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	watch := flag.Bool("watch", false, "consume the server's /events SSE stream and print live per-pool completion/desire tables")
	watchInterval := flag.Duration("watch-interval", time.Second, "live table refresh period in -watch mode")
	watchTimeout := flag.Duration("watch-timeout", 30*time.Second, "exit non-zero when the -watch /events stream goes completely silent for this long (server heartbeats count as liveness; 0 disables)")
	flag.Parse()

	if *batch < 1 {
		fmt.Fprintln(os.Stderr, "palirria-load: -batch must be >= 1")
		os.Exit(2)
	}
	if *dag != "" && *batch > 1 {
		fmt.Fprintln(os.Stderr, "palirria-load: -dag and -batch are mutually exclusive")
		os.Exit(2)
	}
	ws, err := parseWaves(*waves)
	if err != nil {
		fmt.Fprintln(os.Stderr, "palirria-load:", err)
		os.Exit(2)
	}
	submitTarget := *target
	if *router != "" {
		submitTarget = *router
	}
	var w *watcher
	var cw *clusterWatcher
	if *watch {
		if *router != "" {
			// Through a router the per-pool SSE stream is not available;
			// the cluster membership table is the live view instead.
			cw = startClusterWatch(*router, *watchInterval, os.Stdout)
		} else {
			w, err = startWatch(*target, *tenant, *watchInterval, *watchTimeout, os.Stdout)
			if err != nil {
				fmt.Fprintln(os.Stderr, "palirria-load: watch:", err)
				os.Exit(2)
			}
		}
	}
	res := run(submitTarget, *tenant, ws, submitOpts{
		fanout: *fanout, work: *work, batch: *batch,
		dag: *dag, class: *class, deadline: *deadline,
	}, *timeout, os.Stdout)
	var watchErr error
	if w != nil {
		watchErr = w.stop()
		if watchErr != nil {
			fmt.Fprintln(os.Stderr, "palirria-load: watch:", watchErr)
		}
		if err := printAdmitQuantiles(*target, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "palirria-load: status:", err)
		}
	}
	if cw != nil {
		if err := cw.stop(); err != nil {
			fmt.Fprintln(os.Stderr, "palirria-load: cluster watch:", err)
			watchErr = err
		}
	}
	res.print(os.Stdout)
	if err := res.abortReason(); err != nil {
		fmt.Fprintln(os.Stderr, "palirria-load:", err)
		os.Exit(1)
	}
	if res.ok == 0 || res.failed > 0 || watchErr != nil {
		os.Exit(1)
	}
}

// wave is one segment of the arrival pattern.
type wave struct {
	name string
	rps  int
	dur  time.Duration
}

// parseWaves parses "name:rps:duration,..." into a wave sequence.
func parseWaves(s string) ([]wave, error) {
	var out []wave
	for _, seg := range strings.Split(s, ",") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		parts := strings.Split(seg, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad wave %q: want name:rps:duration", seg)
		}
		rps, err := strconv.Atoi(parts[1])
		if err != nil || rps < 1 {
			return nil, fmt.Errorf("bad wave %q: rps %q", seg, parts[1])
		}
		dur, err := time.ParseDuration(parts[2])
		if err != nil || dur <= 0 {
			return nil, fmt.Errorf("bad wave %q: duration %q", seg, parts[2])
		}
		out = append(out, wave{name: parts[0], rps: rps, dur: dur})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty wave pattern %q", s)
	}
	return out, nil
}

// result accumulates the run's outcome counts and latencies.
type result struct {
	mu        sync.Mutex
	ok        int64 // 200: job (or batch) completed
	shed      int64 // 429: queue full or load shed
	unavail   int64 // 503: draining
	failed    int64 // transport errors and unexpected statuses
	jobsDone  int64 // per-job completions inside 200 batch replies
	jobsRej   int64 // per-job rejections inside 200 batch replies
	latencies []time.Duration
	abortErr  error // fatal condition that cut the run short
}

func (r *result) record(status int, lat time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch {
	case err != nil:
		r.failed++
		// A refused connection means the target is gone, not overloaded:
		// abort the remaining waves and surface the cause instead of
		// burying it in the failure count.
		if r.abortErr == nil && errors.Is(err, syscall.ECONNREFUSED) {
			r.abortErr = fmt.Errorf("target refused connection mid-run: %w", err)
		}
	case status == http.StatusOK:
		r.ok++
		r.latencies = append(r.latencies, lat)
	case status == http.StatusTooManyRequests:
		r.shed++
	case status == http.StatusServiceUnavailable:
		r.unavail++
	default:
		r.failed++
	}
}

// abortReason returns the fatal error that cut the run short, if any.
func (r *result) abortReason() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.abortErr
}

func (r *result) recordBatch(completed, rejected int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.jobsDone += completed
	r.jobsRej += rejected
}

func (r *result) print(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	total := r.ok + r.shed + r.unavail + r.failed
	fmt.Fprintf(w, "\n%d requests: %d completed, %d shed (429), %d unavailable (503), %d failed\n",
		total, r.ok, r.shed, r.unavail, r.failed)
	if r.jobsDone+r.jobsRej > 0 {
		fmt.Fprintf(w, "batched jobs: %d completed, %d rejected\n", r.jobsDone, r.jobsRej)
	}
	if len(r.latencies) == 0 {
		return
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(r.latencies)-1))
		return r.latencies[i]
	}
	fmt.Fprintf(w, "latency p50=%s p90=%s p99=%s max=%s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), r.latencies[len(r.latencies)-1].Round(time.Microsecond))
}

// submitOpts shapes what each arrival submits: a plain fan (optionally
// batched), or — with dag set — a structured job graph via /submit-dag.
// class and deadline ride along as query parameters on either path.
type submitOpts struct {
	fanout, work, batch int
	dag                 string        // DAG workload name; "" submits plain fans
	class               string        // priority class (low, normal, high)
	deadline            time.Duration // per-job start deadline (0: none)
}

// submitURL renders the submission endpoint for target/tenant.
func (o submitOpts) submitURL(target, tenant string) string {
	base := strings.TrimRight(target, "/")
	var u string
	if o.dag != "" {
		u = fmt.Sprintf("%s/submit-dag?workload=%s", base, url.QueryEscape(o.dag))
		if o.work > 0 {
			u += fmt.Sprintf("&work=%d", o.work)
		}
	} else {
		u = fmt.Sprintf("%s/submit?fanout=%d&work=%d", base, o.fanout, o.work)
		if o.batch > 1 {
			u += fmt.Sprintf("&count=%d", o.batch)
		}
	}
	if tenant != "" {
		u += "&tenant=" + url.QueryEscape(tenant)
	}
	if o.class != "" {
		u += "&class=" + url.QueryEscape(o.class)
	}
	if o.deadline > 0 {
		u += "&deadline=" + url.QueryEscape(o.deadline.String())
	}
	return u
}

// run fires the wave sequence at target and waits for every outstanding
// request before returning.
func run(target, tenant string, waves []wave, opt submitOpts, timeout time.Duration, log io.Writer) *result {
	submitURL := opt.submitURL(target, tenant)
	client := &http.Client{Timeout: timeout}
	res := &result{}
	var wg sync.WaitGroup
waves:
	for _, wv := range waves {
		fmt.Fprintf(log, "wave %q: %d rps for %s\n", wv.name, wv.rps, wv.dur)
		interval := time.Second / time.Duration(wv.rps)
		ticker := time.NewTicker(interval)
		end := time.Now().Add(wv.dur)
		for time.Now().Before(end) {
			<-ticker.C
			if err := res.abortReason(); err != nil {
				ticker.Stop()
				fmt.Fprintf(log, "aborting remaining waves: %v\n", err)
				break waves
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				start := time.Now()
				resp, err := client.Post(submitURL, "", nil)
				if err != nil {
					res.record(0, 0, err)
					return
				}
				if (opt.batch > 1 || opt.dag != "") && resp.StatusCode == http.StatusOK {
					var rep struct {
						Completed int64 `json:"completed"`
						Rejected  int64 `json:"rejected"`
						Cancelled int64 `json:"cancelled"`
					}
					if json.NewDecoder(resp.Body).Decode(&rep) == nil {
						// A DAG reply reports cancelled nodes where a batch
						// reply reports rejections; both are non-completions.
						res.recordBatch(rep.Completed, rep.Rejected+rep.Cancelled)
					}
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
				res.record(resp.StatusCode, time.Since(start), nil)
			}()
		}
		ticker.Stop()
	}
	wg.Wait()
	return res
}
