package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseWaves(t *testing.T) {
	ws, err := parseWaves("calm:50:1s, burst:400:250ms ,calm:50:1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("got %d waves", len(ws))
	}
	if ws[1].name != "burst" || ws[1].rps != 400 || ws[1].dur != 250*time.Millisecond {
		t.Fatalf("wave[1] = %+v", ws[1])
	}
	for _, bad := range []string{
		"", "calm", "calm:50", "calm:0:1s", "calm:x:1s", "calm:50:zz", "calm:50:-1s",
	} {
		if _, err := parseWaves(bad); err == nil {
			t.Errorf("parseWaves(%q) accepted", bad)
		}
	}
}

func TestRunAgainstStub(t *testing.T) {
	// A stub server that sheds every fourth request exercises the
	// open-loop client and its outcome classification end to end.
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/submit" {
			http.NotFound(w, r)
			return
		}
		if n.Add(1)%4 == 0 {
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"tenant":"default"}`))
	}))
	defer ts.Close()

	ws := []wave{{name: "t", rps: 200, dur: 100 * time.Millisecond}}
	res := run(ts.URL, "web", ws, 8, 100, 1, 2*time.Second, io.Discard)
	total := res.ok + res.shed + res.unavail + res.failed
	if total == 0 {
		t.Fatal("no requests fired")
	}
	if res.ok == 0 || res.shed == 0 {
		t.Fatalf("classification: ok=%d shed=%d (total %d)", res.ok, res.shed, total)
	}
	if res.failed != 0 || res.unavail != 0 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	if len(res.latencies) != int(res.ok) {
		t.Fatalf("latencies %d != ok %d", len(res.latencies), res.ok)
	}
	res.print(io.Discard)
}

func TestRunBatchAgainstStub(t *testing.T) {
	// In batch mode every request carries count jobs and the client folds
	// the per-job completed/rejected counts out of the 200 reply.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("count"); got != "4" {
			http.Error(w, "missing count", http.StatusBadRequest)
			return
		}
		w.Write([]byte(`{"tenant":"default","count":4,"completed":3,"rejected":1,"latency_ns":1}`))
	}))
	defer ts.Close()

	ws := []wave{{name: "t", rps: 100, dur: 50 * time.Millisecond}}
	res := run(ts.URL, "", ws, 8, 100, 4, 2*time.Second, io.Discard)
	if res.ok == 0 || res.failed != 0 {
		t.Fatalf("ok=%d failed=%d", res.ok, res.failed)
	}
	if res.jobsDone != 3*res.ok || res.jobsRej != res.ok {
		t.Fatalf("batch folding: jobsDone=%d jobsRej=%d over %d replies", res.jobsDone, res.jobsRej, res.ok)
	}
	res.print(io.Discard)
}
