package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseWaves(t *testing.T) {
	ws, err := parseWaves("calm:50:1s, burst:400:250ms ,calm:50:1s")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("got %d waves", len(ws))
	}
	if ws[1].name != "burst" || ws[1].rps != 400 || ws[1].dur != 250*time.Millisecond {
		t.Fatalf("wave[1] = %+v", ws[1])
	}
	for _, bad := range []string{
		"", "calm", "calm:50", "calm:0:1s", "calm:x:1s", "calm:50:zz", "calm:50:-1s",
	} {
		if _, err := parseWaves(bad); err == nil {
			t.Errorf("parseWaves(%q) accepted", bad)
		}
	}
}

func TestRunAgainstStub(t *testing.T) {
	// A stub server that sheds every fourth request exercises the
	// open-loop client and its outcome classification end to end.
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/submit" {
			http.NotFound(w, r)
			return
		}
		if n.Add(1)%4 == 0 {
			http.Error(w, "shed", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"tenant":"default"}`))
	}))
	defer ts.Close()

	ws := []wave{{name: "t", rps: 200, dur: 100 * time.Millisecond}}
	res := run(ts.URL, "web", ws, submitOpts{fanout: 8, work: 100, batch: 1}, 2*time.Second, io.Discard)
	total := res.ok + res.shed + res.unavail + res.failed
	if total == 0 {
		t.Fatal("no requests fired")
	}
	if res.ok == 0 || res.shed == 0 {
		t.Fatalf("classification: ok=%d shed=%d (total %d)", res.ok, res.shed, total)
	}
	if res.failed != 0 || res.unavail != 0 {
		t.Fatalf("unexpected failures: %+v", res)
	}
	if len(res.latencies) != int(res.ok) {
		t.Fatalf("latencies %d != ok %d", len(res.latencies), res.ok)
	}
	res.print(io.Discard)
}

func TestRunBatchAgainstStub(t *testing.T) {
	// In batch mode every request carries count jobs and the client folds
	// the per-job completed/rejected counts out of the 200 reply.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("count"); got != "4" {
			http.Error(w, "missing count", http.StatusBadRequest)
			return
		}
		w.Write([]byte(`{"tenant":"default","count":4,"completed":3,"rejected":1,"latency_ns":1}`))
	}))
	defer ts.Close()

	ws := []wave{{name: "t", rps: 100, dur: 50 * time.Millisecond}}
	res := run(ts.URL, "", ws, submitOpts{fanout: 8, work: 100, batch: 4}, 2*time.Second, io.Discard)
	if res.ok == 0 || res.failed != 0 {
		t.Fatalf("ok=%d failed=%d", res.ok, res.failed)
	}
	if res.jobsDone != 3*res.ok || res.jobsRej != res.ok {
		t.Fatalf("batch folding: jobsDone=%d jobsRej=%d over %d replies", res.jobsDone, res.jobsRej, res.ok)
	}
	res.print(io.Discard)
}

func TestSubmitURL(t *testing.T) {
	for _, tc := range []struct {
		opt    submitOpts
		tenant string
		want   string
	}{
		{submitOpts{fanout: 8, work: 100, batch: 1}, "",
			"http://x/submit?fanout=8&work=100"},
		{submitOpts{fanout: 8, work: 100, batch: 4}, "web",
			"http://x/submit?fanout=8&work=100&count=4&tenant=web"},
		{submitOpts{dag: "pipeline", work: 500}, "",
			"http://x/submit-dag?workload=pipeline&work=500"},
		{submitOpts{dag: "mapreduce", class: "high", deadline: 250 * time.Millisecond}, "web",
			"http://x/submit-dag?workload=mapreduce&tenant=web&class=high&deadline=250ms"},
		{submitOpts{fanout: 4, work: 10, batch: 1, class: "normal", deadline: time.Second}, "",
			"http://x/submit?fanout=4&work=10&class=normal&deadline=1s"},
	} {
		if got := tc.opt.submitURL("http://x/", tc.tenant); got != tc.want {
			t.Errorf("submitURL(%+v, %q) = %q, want %q", tc.opt, tc.tenant, got, tc.want)
		}
	}
}

func TestRunDAGAgainstStub(t *testing.T) {
	// In DAG mode every request posts a whole graph to /submit-dag and the
	// client folds the per-node completed/cancelled counts out of the reply.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/submit-dag" {
			http.Error(w, "wrong path "+r.URL.Path, http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		if q.Get("workload") != "pipeline" || q.Get("class") != "high" || q.Get("deadline") != "1s" {
			http.Error(w, "missing params "+r.URL.RawQuery, http.StatusBadRequest)
			return
		}
		w.Write([]byte(`{"tenant":"default","workload":"pipeline","nodes":6,"completed":5,"cancelled":1,"latency_ns":1}`))
	}))
	defer ts.Close()

	ws := []wave{{name: "t", rps: 100, dur: 50 * time.Millisecond}}
	opt := submitOpts{dag: "pipeline", class: "high", deadline: time.Second}
	res := run(ts.URL, "", ws, opt, 2*time.Second, io.Discard)
	if res.ok == 0 || res.failed != 0 {
		t.Fatalf("ok=%d failed=%d", res.ok, res.failed)
	}
	if res.jobsDone != 5*res.ok || res.jobsRej != res.ok {
		t.Fatalf("DAG folding: jobsDone=%d jobsRej=%d over %d replies", res.jobsDone, res.jobsRej, res.ok)
	}
	res.print(io.Discard)
}

// TestRunAbortsOnRefusedConnection is the regression test for the
// mid-run dead-target case: the run must stop firing immediately, carry
// a clear abort reason (which main turns into a non-zero exit), and not
// grind through the remaining waves against a closed port.
func TestRunAbortsOnRefusedConnection(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close() // the port now refuses connections

	ws := []wave{
		{name: "dead", rps: 200, dur: 100 * time.Millisecond},
		{name: "never", rps: 200, dur: 10 * time.Second},
	}
	start := time.Now()
	res := run(ts.URL, "", ws, submitOpts{fanout: 8, work: 100, batch: 1}, 2*time.Second, io.Discard)
	if time.Since(start) > 5*time.Second {
		t.Fatal("run kept hammering a refused target instead of aborting")
	}
	err := res.abortReason()
	if err == nil {
		t.Fatal("no abort reason for a refused target")
	}
	if !strings.Contains(err.Error(), "refused") {
		t.Fatalf("abort reason %q does not name the refusal", err)
	}
	if res.failed == 0 {
		t.Fatal("refused requests not counted as failures")
	}
}

// A healthy run must not abort: shed replies and job completions are
// normal outcomes, only transport-level refusals are fatal.
func TestRunNoAbortOnHealthyTarget(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"tenant":"default"}`))
	}))
	defer ts.Close()
	ws := []wave{{name: "t", rps: 100, dur: 50 * time.Millisecond}}
	res := run(ts.URL, "", ws, submitOpts{fanout: 8, work: 100, batch: 1}, 2*time.Second, io.Discard)
	if err := res.abortReason(); err != nil {
		t.Fatalf("healthy run aborted: %v", err)
	}
}

// TestClusterWatchTable drives the -router watch path against a stub
// /cluster endpoint and checks the rendered table rows.
func TestClusterWatchTable(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"self":{"id":"router"},"peers":[
			{"id":"router","role":"router","state":"alive","self":true},
			{"id":"n1","role":"serve","state":"alive","desire":2,"allotment":2,"spare":6,"queued":1,"admit_p99_seconds":0.001}
		]}`))
	}))
	defer ts.Close()

	var buf bytes.Buffer
	var mu sync.Mutex
	lw := lockedWriter{mu: &mu, w: &buf}
	cw := startClusterWatch(ts.URL, 10*time.Millisecond, lw)
	time.Sleep(50 * time.Millisecond)
	if err := cw.stop(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "peer=n1") || !strings.Contains(out, "spare=6") {
		t.Fatalf("table missing serve row:\n%s", out)
	}
	if !strings.Contains(out, "state=alive") || !strings.Contains(out, "p99=1ms") {
		t.Fatalf("table missing state or p99:\n%s", out)
	}
	if !strings.Contains(out, "final peer=") {
		t.Fatalf("no final table:\n%s", out)
	}
}

// TestClusterWatchUnreachable: a router that never serves /cluster makes
// stop report the failure, so -watch runs cannot silently lose the view.
func TestClusterWatchUnreachable(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	ts.Close()
	cw := startClusterWatch(ts.URL, 10*time.Millisecond, io.Discard)
	time.Sleep(30 * time.Millisecond)
	if err := cw.stop(); err == nil {
		t.Fatal("unreachable cluster view not reported")
	}
}

// lockedWriter serialises the watcher goroutine's writes against the
// test's final read.
type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}
