package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"palirria/internal/cluster"
)

// clusterWatcher periodically scrapes a palirria-router's /cluster view
// and prints a live membership table: one line per peer with its gossiped
// state, desire, allotment, spare parallelism, queue depth, and admit
// p99. It is the -router counterpart of the SSE pool watcher.
type clusterWatcher struct {
	url    string
	log    io.Writer
	stopCh chan struct{}
	done   chan struct{}

	mu      sync.Mutex
	scrapes int64
	lastErr error
}

// startClusterWatch begins scraping router's /cluster every interval.
func startClusterWatch(router string, interval time.Duration, log io.Writer) *clusterWatcher {
	cw := &clusterWatcher{
		url:    strings.TrimRight(router, "/") + "/cluster",
		log:    log,
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go func() {
		defer close(cw.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				cw.scrape("cluster")
			case <-cw.stopCh:
				return
			}
		}
	}()
	return cw
}

// scrape fetches the view once and prints it with the given prefix.
func (cw *clusterWatcher) scrape(prefix string) {
	v, err := cw.fetch()
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if err != nil {
		cw.lastErr = err
		return
	}
	cw.scrapes++
	cw.lastErr = nil
	for _, p := range v.Peers {
		fmt.Fprintf(cw.log,
			"%s peer=%s role=%s state=%s desire=%d allot=%d spare=%d queued=%d shed=%v p99=%s\n",
			prefix, p.ID, p.Role, p.State, p.Desire, p.Allotment, p.Spare,
			p.Queued, p.Shed,
			time.Duration(p.AdmitP99*float64(time.Second)).Round(time.Microsecond))
	}
}

func (cw *clusterWatcher) fetch() (cluster.View, error) {
	resp, err := http.Get(cw.url)
	if err != nil {
		return cluster.View{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return cluster.View{}, fmt.Errorf("GET /cluster: status %d", resp.StatusCode)
	}
	return cluster.DecodeView(resp.Body)
}

// stop ends the scrape loop, prints a final table, and fails when the
// view was never readable (a router that can't tell us its membership is
// a broken run, not a cosmetic miss).
func (cw *clusterWatcher) stop() error {
	close(cw.stopCh)
	select {
	case <-cw.done:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("cluster watcher did not stop")
	}
	cw.scrape("final")
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.scrapes == 0 {
		return fmt.Errorf("cluster view never scraped: %v", cw.lastErr)
	}
	return nil
}
