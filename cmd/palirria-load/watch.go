package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"palirria/internal/obs/stream"
)

// sseFrame is one parsed Server-Sent-Events frame.
type sseFrame struct {
	id      string
	event   string
	data    string
	comment bool
}

// consumeSSE parses r as an SSE byte stream, invoking fn for each
// complete frame. It returns nil on EOF (the server or the caller ended
// the stream) and an error on a malformed line or when fn rejects a
// frame — palirria-load treats both as a failed run.
func consumeSSE(r io.Reader, fn func(sseFrame) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var cur sseFrame
	pending := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if pending {
				if err := fn(cur); err != nil {
					return err
				}
			}
			cur = sseFrame{}
			pending = false
		case strings.HasPrefix(line, ":"):
			if err := fn(sseFrame{comment: true, data: strings.TrimPrefix(line[1:], " ")}); err != nil {
				return err
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = line[4:]
			pending = true
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
			pending = true
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
			pending = true
		default:
			return fmt.Errorf("malformed SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil && err != context.Canceled &&
		!strings.Contains(err.Error(), "context canceled") {
		return err
	}
	return nil
}

// poolWatch accumulates one pool's live counters from the stream.
type poolWatch struct {
	admitted, started, completed, cancelled, shed int64
	desire, granted, capacity                     int
}

// watcher consumes a palirria-serve /events stream on its own goroutine
// and prints a live per-pool table line once per interval.
type watcher struct {
	cancel context.CancelFunc
	done   chan struct{}
	log    io.Writer

	// lastFrame is the wall-clock nanosecond of the last sign of life on
	// the stream — any frame, comment heartbeats included. The watchdog
	// compares it against the silence timeout.
	lastFrame atomic.Int64

	mu     sync.Mutex
	pools  map[string]*poolWatch
	drops  int64 // events the server dropped for us (drop frames)
	frames int64
	err    error
}

// startWatch opens the SSE subscription and begins consuming. The
// returned watcher must be stopped; stop reports any malformed frame. A
// timeout > 0 arms a watchdog: if the stream stays completely silent —
// no events and no comment heartbeats — for that long, the subscription
// is torn down and stop reports the stall (palirria-serve heartbeats
// every few seconds even when idle, so a healthy stream is never mute).
func startWatch(target, tenant string, interval, timeout time.Duration, log io.Writer) (*watcher, error) {
	url := strings.TrimRight(target, "/") + "/events"
	if tenant != "" {
		url += "?tenant=" + tenant
	}
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	// No client timeout: the subscription lives until stop cancels it.
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("GET /events: status %d", resp.StatusCode)
	}
	w := &watcher{
		cancel: cancel,
		done:   make(chan struct{}),
		log:    log,
		pools:  map[string]*poolWatch{},
	}
	w.lastFrame.Store(time.Now().UnixNano())
	go func() {
		defer close(w.done)
		defer resp.Body.Close()
		if err := consumeSSE(resp.Body, w.handle); err != nil {
			w.mu.Lock()
			if w.err == nil { // a watchdog stall verdict wins over the unwind
				w.err = err
			}
			w.mu.Unlock()
		}
	}()
	go w.printLoop(interval)
	if timeout > 0 {
		go w.watchdog(timeout)
	}
	return w, nil
}

// watchdog tears the subscription down if the stream goes silent past
// timeout; the stall becomes the watcher's error so the run exits
// non-zero.
func (w *watcher) watchdog(timeout time.Duration) {
	tick := timeout / 4
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			since := time.Since(time.Unix(0, w.lastFrame.Load()))
			if since <= timeout {
				continue
			}
			w.mu.Lock()
			if w.err == nil {
				w.err = fmt.Errorf("event stream silent for %s (watch timeout %s, heartbeats count as liveness)",
					since.Round(time.Millisecond), timeout)
			}
			w.mu.Unlock()
			w.cancel()
			return
		}
	}
}

// handle folds one frame into the live counters.
func (w *watcher) handle(f sseFrame) error {
	w.lastFrame.Store(time.Now().UnixNano())
	if f.comment {
		return nil // heartbeat
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.frames++
	if f.event == "drop" {
		var d struct {
			Dropped int64 `json:"dropped"`
		}
		if err := json.Unmarshal([]byte(f.data), &d); err != nil {
			return fmt.Errorf("bad drop frame %q: %w", f.data, err)
		}
		w.drops += d.Dropped
		return nil
	}
	var ev stream.Event
	if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
		return fmt.Errorf("bad event data %q: %w", f.data, err)
	}
	if ev.Kind.String() != f.event {
		return fmt.Errorf("event name %q does not match data kind %q", f.event, ev.Kind)
	}
	pw := w.pools[ev.Pool]
	if pw == nil {
		pw = &poolWatch{}
		w.pools[ev.Pool] = pw
	}
	switch ev.Kind {
	case stream.KindAdmitted:
		pw.admitted++
	case stream.KindStarted:
		pw.started++
	case stream.KindCompleted:
		pw.completed++
	case stream.KindCancelled:
		pw.cancelled++
	case stream.KindShed:
		pw.shed++
	case stream.KindQuantum:
		pw.desire, pw.granted, pw.capacity = ev.Desire, ev.Granted, ev.Capacity
	}
	return nil
}

func (w *watcher) printLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.printTable("watch")
		case <-w.done:
			return
		}
	}
}

// printTable renders one line per pool with the live counters.
func (w *watcher) printTable(prefix string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	names := make([]string, 0, len(w.pools))
	for n := range w.pools {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pw := w.pools[n]
		fmt.Fprintf(w.log,
			"%s pool=%s admitted=%d completed=%d cancelled=%d shed=%d desire=%d allot=%d cap=%d drops=%d\n",
			prefix, n, pw.admitted, pw.completed, pw.cancelled, pw.shed,
			pw.desire, pw.granted, pw.capacity, w.drops)
	}
}

// stop ends the subscription, prints the final table, and returns the
// first malformed-frame error, if any.
func (w *watcher) stop() error {
	w.cancel()
	select {
	case <-w.done:
	case <-time.After(5 * time.Second):
		return fmt.Errorf("watch consumer did not stop")
	}
	w.printTable("final")
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.frames == 0 && w.err == nil {
		return fmt.Errorf("watch saw no events")
	}
	return w.err
}

// printAdmitQuantiles fetches /status and prints each pool's
// submit-to-start latency quantiles.
func printAdmitQuantiles(target string, log io.Writer) error {
	resp, err := http.Get(strings.TrimRight(target, "/") + "/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st struct {
		Pools []struct {
			Name     string  `json:"name"`
			AdmitP50 float64 `json:"admit_p50_seconds"`
			AdmitP99 float64 `json:"admit_p99_seconds"`
		} `json:"pools"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	for _, p := range st.Pools {
		fmt.Fprintf(log, "pool %s: admit p50=%s p99=%s\n", p.Name,
			time.Duration(p.AdmitP50*float64(time.Second)).Round(time.Microsecond),
			time.Duration(p.AdmitP99*float64(time.Second)).Round(time.Microsecond))
	}
	return nil
}
