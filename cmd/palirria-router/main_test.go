package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"palirria/internal/cluster"
)

// fakeServeNode is a minimal gossip member with a stub /submit, standing
// in for a palirria-serve instance.
func fakeServeNode(t *testing.T, id string) (*cluster.Node, *httptest.Server) {
	t.Helper()
	mux := http.NewServeMux()
	ts := httptest.NewServer(mux)
	n, err := cluster.NewNode(cluster.Config{
		ID: id, Addr: ts.URL, Role: cluster.RoleServe,
		Snapshot: func() cluster.Record { return cluster.Record{Spare: 3} },
		Interval: 20 * time.Millisecond,
	})
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	mux.HandleFunc("/gossip", n.GossipHandler())
	mux.HandleFunc("/cluster", n.ClusterHandler())
	mux.HandleFunc("/submit", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"tenant":"default"}`)
	})
	n.Start()
	t.Cleanup(func() { n.Stop(); ts.Close() })
	return n, ts
}

func TestRouterEndToEnd(t *testing.T) {
	_, backend := fakeServeNode(t, "n1")

	r, err := newRouter(options{
		clusterAddr: "http://router.test",
		clusterJoin: backend.URL + " , ", // trailing separators are cleaned
		gossipEvery: 20 * time.Millisecond,
		retries:     2,
		timeout:     5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.close()
	front := httptest.NewServer(r.handler())
	defer front.Close()

	// Membership converges, then a submission proxies through.
	deadline := time.Now().Add(5 * time.Second)
	for len(r.node.Serveable()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("router never discovered the serve node")
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(front.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v %v", resp, err)
	}
	resp.Body.Close()

	resp, err = http.Post(front.URL+"/submit?fanout=4", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Palirria-Node"); got != "n1" {
		t.Fatalf("X-Palirria-Node = %q", got)
	}
	if !strings.Contains(string(body), `"tenant"`) {
		t.Fatalf("body = %s", body)
	}

	// The membership view and metrics render.
	resp, err = http.Get(front.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	v, err := cluster.DecodeView(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Peers) != 2 { // router + serve node
		t.Fatalf("view peers = %+v", v.Peers)
	}
	resp, err = http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"palirria_router_routed_total", "palirria_cluster_rounds_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %s:\n%s", want, metrics)
		}
	}
}
