// palirria-router fronts a cluster of palirria-serve nodes: it joins the
// gossip mesh as a router-role member, watches every node's advertised
// desire/allotment/spare-parallelism record, and steers each POST /submit
// to the node with the most spare estimated parallelism — the paper's
// DVS victim ordering lifted to the node level.
//
// Routing policy (see docs/CLUSTER.md):
//
//   - power-of-two-choices over spare parallelism (allotment − desire),
//     tie-broken by admission p99 and queue depth;
//   - dead peers are never picked; shedding/suspect nodes only when no
//     healthy node has spare capacity;
//   - per-node circuit breakers with half-open probes;
//   - bounded retry on a *different* node with doubling backoff (-retries);
//   - sticky routing: ?sticky=KEY (or, for ?count=N batches, the client
//     address) pins consecutive submissions to one node while it stays
//     healthy, so a DAG-free batch prefix keeps its locality.
//
// Endpoints:
//
//	GET  /healthz    liveness probe
//	GET  /metrics    Prometheus text format (routed/retried/failover counters)
//	GET  /cluster    gossip membership view
//	POST /gossip     anti-entropy exchange
//	POST /submit?... proxied submission (replies with the node's reply +
//	                 X-Palirria-Node naming the serving node)
//
// Usage:
//
//	palirria-router -listen :8070 -cluster-addr http://10.0.0.9:8070 \
//	    -cluster-join http://10.0.0.5:8077,http://10.0.0.6:8077
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"palirria/internal/cluster"
	"palirria/internal/cluster/pick"
	"palirria/internal/obs"
	"palirria/internal/obs/stream"
)

func main() {
	var opts options
	flag.StringVar(&opts.listen, "listen", ":8070", "HTTP listen address")
	flag.StringVar(&opts.clusterAddr, "cluster-addr", "", "advertised base URL (default http://<listen>)")
	flag.StringVar(&opts.clusterJoin, "cluster-join", "", "comma-separated seed base URLs of serve nodes (required)")
	flag.StringVar(&opts.clusterSecret, "cluster-secret", "", "shared HMAC secret signing gossip records (empty: unsigned)")
	flag.DurationVar(&opts.gossipEvery, "gossip", 500*time.Millisecond, "gossip exchange period")
	flag.DurationVar(&opts.suspectAfter, "suspect-after", 0, "silence before a peer is suspected (default 4x gossip period)")
	flag.DurationVar(&opts.deadAfter, "dead-after", 0, "silence before a suspected peer is confirmed dead (default 10x gossip period)")
	flag.IntVar(&opts.retries, "retries", 2, "additional nodes tried when a submission fails")
	flag.DurationVar(&opts.timeout, "timeout", 60*time.Second, "per-attempt submission timeout")
	flag.Parse()

	if opts.clusterJoin == "" {
		fmt.Fprintln(os.Stderr, "palirria-router: -cluster-join is required")
		os.Exit(2)
	}
	lis, err := net.Listen("tcp", opts.listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "palirria-router:", err)
		os.Exit(1)
	}
	if opts.clusterAddr == "" {
		opts.clusterAddr = "http://" + lis.Addr().String()
	}
	r, err := newRouter(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "palirria-router:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: r.handler(), ReadHeaderTimeout: 5 * time.Second}
	fmt.Printf("palirria-router: listening on %s, joining %s\n", lis.Addr(), opts.clusterJoin)
	if err := srv.Serve(lis); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "palirria-router:", err)
		os.Exit(1)
	}
}

type options struct {
	listen        string
	clusterAddr   string
	clusterJoin   string
	clusterSecret string
	gossipEvery   time.Duration
	suspectAfter  time.Duration
	deadAfter     time.Duration
	retries       int
	timeout       time.Duration
}

// router bundles the gossip member, picker, proxy core, and metrics; it
// is separated from main so tests drive the HTTP surface in-process.
type router struct {
	reg  *obs.Registry
	hub  *stream.Hub
	node *cluster.Node
	core *cluster.Router
}

func newRouter(opts options) (*router, error) {
	r := &router{reg: obs.NewRegistry(), hub: stream.NewHub()}
	r.hub.Register(r.reg)
	var seeds []string
	for _, s := range strings.Split(opts.clusterJoin, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}
	node, err := cluster.NewNode(cluster.Config{
		Addr:         opts.clusterAddr,
		Role:         cluster.RoleRouter,
		Secret:       opts.clusterSecret,
		Join:         seeds,
		Interval:     opts.gossipEvery,
		SuspectAfter: opts.suspectAfter,
		DeadAfter:    opts.deadAfter,
		Events:       r.hub,
		Metrics:      r.reg,
	})
	if err != nil {
		return nil, err
	}
	r.node = node
	picker := pick.New(node.Serveable, pick.Options{})
	core, err := cluster.NewRouter(cluster.RouterConfig{
		Node:    node,
		Picker:  picker,
		Retries: opts.retries,
		Client:  &http.Client{Timeout: opts.timeout},
		Events:  r.hub,
		Metrics: r.reg,
	})
	if err != nil {
		return nil, err
	}
	r.core = core
	node.Start()
	return r, nil
}

func (r *router) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", r.core.Handler()) // /submit, /gossip, /cluster, /healthz
	mux.Handle("/metrics", r.reg.Handler())
	return mux
}

func (r *router) close() {
	r.node.Stop()
	r.hub.Close()
}
