// palirria-topo visualizes mesh topologies, allotments and their DVS
// classification (the paper's Figs. 1, 2 and 9), and — with -cluster —
// the live gossip view of a running Palirria cluster.
//
// Usage:
//
//	palirria-topo -fig 1              # the paper's 41-worker illustration
//	palirria-topo -fig 2              # three co-scheduled applications
//	palirria-topo -fig 9              # the evaluation allotments
//	palirria-topo -dims 8x6 -source 28 -d 3   # custom classification
//	palirria-topo -dims 8x6 -source 28 -series # allotment size series
//	palirria-topo -cluster http://localhost:8070  # gossip membership table
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"palirria/internal/cluster"
	"palirria/internal/experiments"
	"palirria/internal/plot"
	"palirria/internal/topo"
)

func main() {
	fig := flag.Int("fig", 0, "render a paper figure (1, 2, 3, 9)")
	dims := flag.String("dims", "8x4", "mesh dimensions, e.g. 8, 8x4, 4x4x4")
	source := flag.Int("source", 20, "source core id")
	d := flag.Int("d", 2, "diaspora")
	reserved := flag.String("reserved", "0,1", "comma-separated reserved cores")
	series := flag.Bool("series", false, "print the allotment size series instead")
	clusterURL := flag.String("cluster", "", "base URL of a cluster member (node or router); print its gossip view table")
	flag.Parse()

	if *clusterURL != "" {
		if err := runCluster(*clusterURL, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "palirria-topo:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*fig, *dims, *source, *d, *reserved, *series); err != nil {
		fmt.Fprintln(os.Stderr, "palirria-topo:", err)
		os.Exit(1)
	}
}

// runCluster fetches one member's /cluster document and renders the
// membership as a table: every peer with its gossiped state and load
// signal, the node's own row marked with '*'.
func runCluster(base string, w io.Writer) error {
	resp, err := http.Get(strings.TrimRight(base, "/") + "/cluster")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /cluster: status %d", resp.StatusCode)
	}
	v, err := cluster.DecodeView(resp.Body)
	if err != nil {
		return fmt.Errorf("decode /cluster: %w", err)
	}
	fmt.Fprintf(w, "cluster view from %s (%d members, %d gossip rounds)\n",
		v.Self.ID, len(v.Peers), v.Rounds)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PEER\tROLE\tSTATE\tD\tA\tSPARE\tQUEUED\tSHED\tP99\tSILENT")
	for _, p := range v.Peers {
		name := p.ID
		if p.Self {
			name += " *"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%v\t%s\t%s\n",
			name, p.Role, p.State, p.Desire, p.Allotment, p.Spare,
			p.Queued, p.Shed,
			time.Duration(p.AdmitP99*float64(time.Second)).Round(time.Microsecond),
			(time.Duration(p.SilentMS) * time.Millisecond).Round(time.Millisecond))
	}
	return tw.Flush()
}

func run(fig int, dims string, source, d int, reserved string, series bool) error {
	switch fig {
	case 1:
		return experiments.Fig1(os.Stdout)
	case 2:
		return experiments.Fig2(os.Stdout)
	case 3:
		return experiments.Fig3(os.Stdout)
	case 9:
		return experiments.Fig9(os.Stdout)
	case 0:
		// custom rendering below
	default:
		return fmt.Errorf("unknown figure %d (have 1, 2, 3, 9)", fig)
	}

	var extents []int
	for _, part := range strings.Split(dims, "x") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad dims %q: %w", dims, err)
		}
		extents = append(extents, v)
	}
	m, err := topo.NewMesh(extents...)
	if err != nil {
		return err
	}
	if reserved != "" {
		for _, part := range strings.Split(reserved, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad reserved list %q: %w", reserved, err)
			}
			m.Reserve(topo.CoreID(v))
		}
	}
	if series {
		maxD := m.MaxDiaspora(topo.CoreID(source))
		fmt.Printf("%s, source %d: allotment sizes per diaspora\n", m, source)
		for dd, size := range topo.ZoneSeries(m, topo.CoreID(source), maxD) {
			fmt.Printf("  d=%d: %d workers\n", dd+1, size)
		}
		return nil
	}
	a, err := topo.NewAllotment(m, topo.CoreID(source), d)
	if err != nil {
		return err
	}
	plot.ClassGrid(os.Stdout,
		fmt.Sprintf("%s: %d workers, source %d, diaspora %d", m, a.Size(), source, d),
		topo.Classify(a))
	return nil
}
