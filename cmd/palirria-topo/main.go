// palirria-topo visualizes mesh topologies, allotments and their DVS
// classification (the paper's Figs. 1, 2 and 9).
//
// Usage:
//
//	palirria-topo -fig 1              # the paper's 41-worker illustration
//	palirria-topo -fig 2              # three co-scheduled applications
//	palirria-topo -fig 9              # the evaluation allotments
//	palirria-topo -dims 8x6 -source 28 -d 3   # custom classification
//	palirria-topo -dims 8x6 -source 28 -series # allotment size series
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"palirria/internal/experiments"
	"palirria/internal/plot"
	"palirria/internal/topo"
)

func main() {
	fig := flag.Int("fig", 0, "render a paper figure (1, 2, 3, 9)")
	dims := flag.String("dims", "8x4", "mesh dimensions, e.g. 8, 8x4, 4x4x4")
	source := flag.Int("source", 20, "source core id")
	d := flag.Int("d", 2, "diaspora")
	reserved := flag.String("reserved", "0,1", "comma-separated reserved cores")
	series := flag.Bool("series", false, "print the allotment size series instead")
	flag.Parse()

	if err := run(*fig, *dims, *source, *d, *reserved, *series); err != nil {
		fmt.Fprintln(os.Stderr, "palirria-topo:", err)
		os.Exit(1)
	}
}

func run(fig int, dims string, source, d int, reserved string, series bool) error {
	switch fig {
	case 1:
		return experiments.Fig1(os.Stdout)
	case 2:
		return experiments.Fig2(os.Stdout)
	case 3:
		return experiments.Fig3(os.Stdout)
	case 9:
		return experiments.Fig9(os.Stdout)
	case 0:
		// custom rendering below
	default:
		return fmt.Errorf("unknown figure %d (have 1, 2, 3, 9)", fig)
	}

	var extents []int
	for _, part := range strings.Split(dims, "x") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad dims %q: %w", dims, err)
		}
		extents = append(extents, v)
	}
	m, err := topo.NewMesh(extents...)
	if err != nil {
		return err
	}
	if reserved != "" {
		for _, part := range strings.Split(reserved, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad reserved list %q: %w", reserved, err)
			}
			m.Reserve(topo.CoreID(v))
		}
	}
	if series {
		maxD := m.MaxDiaspora(topo.CoreID(source))
		fmt.Printf("%s, source %d: allotment sizes per diaspora\n", m, source)
		for dd, size := range topo.ZoneSeries(m, topo.CoreID(source), maxD) {
			fmt.Printf("  d=%d: %d workers\n", dd+1, size)
		}
		return nil
	}
	a, err := topo.NewAllotment(m, topo.CoreID(source), d)
	if err != nil {
		return err
	}
	plot.ClassGrid(os.Stdout,
		fmt.Sprintf("%s: %d workers, source %d, diaspora %d", m, a.Size(), source, d),
		topo.Classify(a))
	return nil
}
