package main

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRunFigures(t *testing.T) {
	for _, fig := range []int{1, 2, 3, 9} {
		if err := run(fig, "", 0, 0, "", false); err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
	}
	if err := run(7, "", 0, 0, "", false); err == nil {
		t.Fatal("unknown figure must fail")
	}
}

func TestRunCustomGrid(t *testing.T) {
	if err := run(0, "8x4", 20, 2, "0,1", false); err != nil {
		t.Fatal(err)
	}
	if err := run(0, "4x4x4", 21, 2, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeries(t *testing.T) {
	if err := run(0, "8x6", 28, 0, "0,1,2", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadInput(t *testing.T) {
	if err := run(0, "axb", 0, 1, "", false); err == nil {
		t.Fatal("bad dims must fail")
	}
	if err := run(0, "8x4", 20, 1, "x", false); err == nil {
		t.Fatal("bad reserved list must fail")
	}
	if err := run(0, "8x4", 99, 1, "", false); err == nil {
		t.Fatal("invalid source must fail")
	}
}

// TestRunCluster renders a gossip view table from a stub /cluster
// endpoint: every peer row present, the self row starred.
func TestRunCluster(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(`{"self":{"id":"router"},"rounds":17,"peers":[
			{"id":"router","role":"router","state":"alive","self":true},
			{"id":"n1","role":"serve","state":"alive","desire":2,"allotment":2,"spare":6,"queued":3,"admit_p99_seconds":0.002},
			{"id":"n2","role":"serve","state":"suspect","silent_ms":450}
		]}`))
	}))
	defer ts.Close()

	var buf bytes.Buffer
	if err := runCluster(ts.URL, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"3 members", "17 gossip rounds", "router *", "n1", "suspect", "2ms", "450ms",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestRunClusterUnreachable(t *testing.T) {
	ts := httptest.NewServer(http.NotFoundHandler())
	defer ts.Close()
	if err := runCluster(ts.URL, io.Discard); err == nil {
		t.Fatal("404 /cluster must fail")
	}
	ts.Close()
	if err := runCluster(ts.URL, io.Discard); err == nil {
		t.Fatal("refused connection must fail")
	}
}
