package main

import "testing"

func TestRunFigures(t *testing.T) {
	for _, fig := range []int{1, 2, 3, 9} {
		if err := run(fig, "", 0, 0, "", false); err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
	}
	if err := run(7, "", 0, 0, "", false); err == nil {
		t.Fatal("unknown figure must fail")
	}
}

func TestRunCustomGrid(t *testing.T) {
	if err := run(0, "8x4", 20, 2, "0,1", false); err != nil {
		t.Fatal(err)
	}
	if err := run(0, "4x4x4", 21, 2, "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeries(t *testing.T) {
	if err := run(0, "8x6", 28, 0, "0,1,2", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadInput(t *testing.T) {
	if err := run(0, "axb", 0, 1, "", false); err == nil {
		t.Fatal("bad dims must fail")
	}
	if err := run(0, "8x4", 20, 1, "x", false); err == nil {
		t.Fatal("bad reserved list must fail")
	}
	if err := run(0, "8x4", 99, 1, "", false); err == nil {
		t.Fatal("invalid source must fail")
	}
}
