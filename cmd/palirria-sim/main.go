// palirria-sim runs a single workload configuration on the simulator and
// prints its report.
//
// Usage:
//
//	palirria-sim -workload fib -scheduler palirria -platform sim32
//	palirria-sim -workload sort -scheduler wool -workers 27
//	palirria-sim -workload bursty -scheduler asteal -quantum 20000 -timeline
//	palirria-sim -workload fib -trace-out /tmp/fib.json   # chrome://tracing
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"palirria"
)

func main() {
	wl := flag.String("workload", "fib", "workload name ("+strings.Join(palirria.Workloads(), ", ")+")")
	sched := flag.String("scheduler", "palirria", "scheduler: wool, asteal, palirria")
	platform := flag.String("platform", "sim32", "platform: sim32, numa48")
	workers := flag.Int("workers", 0, "fixed allotment size (wool only; default max)")
	quantum := flag.Int64("quantum", 0, "estimation interval in cycles (default 50000)")
	seed := flag.Uint64("seed", 9, "seed for random victim selection")
	timeline := flag.Bool("timeline", false, "print the allotment timeline")
	traceN := flag.Int("trace", 0, "print the last N scheduler trace events")
	perWorker := flag.Bool("per-worker", false, "print per-worker cycle accounting")
	asJSON := flag.Bool("json", false, "emit the full report as JSON")
	traceOut := flag.String("trace-out", "", "write a Chrome trace_event JSON file (open in chrome://tracing or Perfetto)")
	flag.Parse()

	rep, err := palirria.RunSim(palirria.SimConfig{
		Platform:     *platform,
		Workload:     *wl,
		Scheduler:    *sched,
		FixedWorkers: *workers,
		Quantum:      *quantum,
		Seed:         *seed,
		TraceCap:     *traceN,
		Observe:      *traceOut != "",
		// JSON reports and Chrome traces both carry the estimator
		// introspection snapshots.
		Introspect: *asJSON || *traceOut != "",
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "palirria-sim:", err)
		os.Exit(1)
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "palirria-sim:", err)
			os.Exit(1)
		}
		if err := rep.Obs.WriteChrome(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "palirria-sim:", err)
			os.Exit(1)
		}
		if !*asJSON {
			fmt.Printf("trace:         %d events, %d estimator snapshots -> %s\n",
				len(rep.Obs.Events), len(rep.EstimatorTrace), *traceOut)
		}
	}
	if *asJSON {
		data, err := rep.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "palirria-sim:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}
	fmt.Printf("workload:      %s on %s under %s\n", *wl, *platform, *sched)
	fmt.Printf("exec cycles:   %d\n", rep.ExecCycles)
	fmt.Printf("workers:       max %d, avg %.1f\n", rep.MaxWorkers, rep.AvgWorkers)
	fmt.Printf("wastefulness:  %.2f%%\n", rep.WastefulnessPercent)
	fmt.Printf("tasks:         %d  (steals %d, failed probes %d)\n",
		rep.Tasks, rep.Steals, rep.FailedProbes)

	if *timeline {
		fmt.Println("\nallotment timeline (time -> workers):")
		for _, p := range rep.Timeline.Points() {
			fmt.Printf("  %12d  %d\n", p.Time, p.Workers)
		}
	}
	if *traceN > 0 {
		fmt.Printf("\nlast %d scheduler events:\n", len(rep.Trace))
		palirria.WriteSimTrace(os.Stdout, rep.Trace)
	}
	if *perWorker {
		fmt.Println("\nper-worker accounting:")
		rep.Metrics.WriteTable(os.Stdout)
	}
}
