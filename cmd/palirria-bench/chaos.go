package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"palirria/internal/chaos"
)

// chaosFailure is the replay artifact written when a scenario violates an
// invariant: the scenario, the seed, the fully expanded script and the
// violations. Re-running `palirria-bench -chaos -chaos-scenario NAME
// -chaos-seed SEED` replays the identical adversarial plan.
type chaosFailure struct {
	Scenario   string          `json:"scenario"`
	Seed       uint64          `json:"seed"`
	Violations []string        `json:"violations"`
	Script     json.RawMessage `json:"script"`
	Result     *chaos.Result   `json:"result"`
}

// chaosRun executes the chaos suite: every scenario (or just `only`)
// under `nseeds` seeds starting at `seed0`, each bounded by `timeout`.
// Seeds are printed up front so any failure is reproducible from the log
// alone; on a violation the failure artifact is also written to failPath
// and the run exits non-zero after finishing the remaining scenarios.
func chaosRun(only string, seed0 uint64, nseeds int, timeout time.Duration, failPath string) error {
	suite := chaos.Scenarios()
	if only != "" {
		s, ok := chaos.Lookup(only)
		if !ok {
			var names []string
			for _, sc := range suite {
				names = append(names, sc.Name)
			}
			return fmt.Errorf("unknown chaos scenario %q (have: %s)", only, strings.Join(names, ", "))
		}
		suite = []chaos.Scenario{s}
	}
	if nseeds < 1 {
		nseeds = 1
	}
	fmt.Printf("chaos: %d scenario(s) x %d seed(s) [%d..%d], bound %s\n",
		len(suite), nseeds, seed0, seed0+uint64(nseeds)-1, timeout)
	var failures []chaosFailure
	for _, s := range suite {
		for i := 0; i < nseeds; i++ {
			seed := seed0 + uint64(i)
			sc := s.Plan(seed)
			res := chaos.Run(sc, timeout)
			status := "ok"
			if !res.Ok() {
				status = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
				failures = append(failures, chaosFailure{
					Scenario:   s.Name,
					Seed:       seed,
					Violations: res.Violations,
					Script:     sc.Marshal(),
					Result:     res,
				})
			}
			fmt.Printf("  %-22s seed=%-6d %8s  accepted=%-5d rejected=%-5d completed=%-5d discarded=%-4d leaves=%-6d %s\n",
				s.Name, seed, time.Duration(res.DurationNS).Round(time.Millisecond),
				res.Accepted, res.Rejected, res.Completed, res.Discarded, res.LeafRuns, status)
			for _, v := range res.Violations {
				fmt.Printf("    violation: %s\n", v)
			}
		}
	}
	if len(failures) == 0 {
		fmt.Println("chaos: all invariants held")
		return nil
	}
	if failPath != "" {
		b, err := json.MarshalIndent(failures, "", "  ")
		if err == nil {
			err = os.WriteFile(failPath, b, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos: could not write failure artifact: %v\n", err)
		} else {
			fmt.Printf("chaos: wrote replay artifact to %s\n", failPath)
		}
	}
	return fmt.Errorf("%d scenario run(s) violated invariants", len(failures))
}
