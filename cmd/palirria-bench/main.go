// palirria-bench regenerates the paper's evaluation figures and tables.
//
// Usage:
//
//	palirria-bench -fig 3            # DVS flow arrows
//	palirria-bench -fig 4            # workload input table
//	palirria-bench -fig 5            # simulator performance (a/b/c)
//	palirria-bench -fig 6            # simulator per-worker useful time
//	palirria-bench -fig 7            # Linux-model performance (a/b/c)
//	palirria-bench -fig 8            # Linux-model per-worker useful time
//	palirria-bench -fig 9            # allotment classifications
//	palirria-bench -summary          # headline PA-vs-AS aggregates
//	palirria-bench -ablations        # quantum/L/victim/filter/overhead
//	palirria-bench -all              # everything
//	palirria-bench -trace-out /tmp/fib.json -trace-workload fib
//	palirria-bench -wsrt -bench-out BENCH_wsrt.json   # real-runtime idle-path benchmarks
//	palirria-bench -chaos -chaos-seeds 4              # seeded reconfiguration chaos suite
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"palirria"
	"palirria/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure number to regenerate (1-9)")
	summary := flag.Bool("summary", false, "print the headline summary for both platforms")
	multiprog := flag.Bool("multiprog", false, "run the multiprogrammed co-scheduling extension")
	rt := flag.Bool("rt", false, "run the workload set on the real goroutine runtime (noisy)")
	seeds := flag.Int("seeds", 1, "seeds per configuration; >1 reports the second-best run (the paper ran 10)")
	ablations := flag.Bool("ablations", false, "run the design-choice ablations")
	all := flag.Bool("all", false, "regenerate everything")
	traceOut := flag.String("trace-out", "", "trace one simulator run to a Chrome trace_event JSON file and exit")
	traceWL := flag.String("trace-workload", "fib", "workload for -trace-out")
	wsrtB := flag.Bool("wsrt", false, "measure the real runtime's idle-path benchmarks (submit latency, steal throughput, idle burn) and exit")
	benchOut := flag.String("bench-out", "BENCH_wsrt.json", "output path for the -wsrt JSON report")
	benchBase := flag.String("bench-baseline", "", "committed BENCH_wsrt.json to gate -wsrt against; fails on a >2x submit-throughput regression")
	benchCount := flag.Int("bench-count", 1, "repetitions per submit-throughput tier; the median repetition is reported and gated")
	chaosB := flag.Bool("chaos", false, "run the seeded reconfiguration chaos suite and exit (non-zero on any invariant violation)")
	chaosScenario := flag.String("chaos-scenario", "", "restrict -chaos to one scenario by name")
	chaosSeed := flag.Uint64("chaos-seed", 1, "first seed for -chaos; a failing (scenario, seed) pair replays byte-identically")
	chaosSeeds := flag.Int("chaos-seeds", 2, "seeds per scenario for -chaos")
	chaosBound := flag.Duration("chaos-bound", 90*time.Second, "per-scenario deadlock bound for -chaos")
	chaosOut := flag.String("chaos-out", "CHAOS_FAIL.json", "replay artifact path written by -chaos on violation")
	flag.Parse()

	if *chaosB {
		if err := chaosRun(*chaosScenario, *chaosSeed, *chaosSeeds, *chaosBound, *chaosOut); err != nil {
			fmt.Fprintln(os.Stderr, "palirria-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *wsrtB {
		if err := wsrtBench(*benchOut, *benchBase, *benchCount); err != nil {
			fmt.Fprintln(os.Stderr, "palirria-bench:", err)
			os.Exit(1)
		}
		return
	}
	if *traceOut != "" {
		if err := traceRun(*traceWL, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "palirria-bench:", err)
			os.Exit(1)
		}
		return
	}
	if !*all && !*summary && !*ablations && !*multiprog && !*rt && *fig == 0 {
		flag.Usage()
		os.Exit(2)
	}
	start := time.Now()
	if err := run(*fig, *summary, *ablations, *multiprog, *rt, *all, *seeds); err != nil {
		fmt.Fprintln(os.Stderr, "palirria-bench:", err)
		os.Exit(1)
	}
	fmt.Printf("\n(total harness time: %s)\n", time.Since(start).Round(time.Millisecond))
}

// traceRun executes one palirria-scheduled simulator run of the named
// workload with tracing and estimator introspection on, writes the Chrome
// trace, and prints the per-worker accounting table.
func traceRun(wl, path string) error {
	rep, err := palirria.RunSim(palirria.SimConfig{
		Workload:   wl,
		Scheduler:  "palirria",
		Observe:    true,
		Introspect: true,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.Obs.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s under palirria: %d cycles, %d events, %d estimator snapshots -> %s\n",
		wl, rep.ExecCycles, len(rep.Obs.Events), len(rep.EstimatorTrace), path)
	rep.Metrics.WriteTable(os.Stdout)
	return nil
}

func run(fig int, summary, ablations, multiprog, rt, all bool, nseeds int) error {
	var seeds []uint64
	if nseeds > 1 {
		for i := 0; i < nseeds; i++ {
			seeds = append(seeds, uint64(9+i))
		}
	}
	out := os.Stdout
	var simSuite, linuxSuite []experiments.WorkloadRuns
	var err error
	needSim := all || summary || fig == 5 || fig == 6
	needLinux := all || summary || fig == 7 || fig == 8
	simP, linuxP := experiments.SimPlatform(), experiments.LinuxPlatform()
	if needSim {
		fmt.Fprintf(out, "running simulator-platform suite (7 workloads x 6 configs x %d seed(s))...\n", max(1, nseeds))
		if simSuite, err = experiments.RunSuiteSeeds(simP, seeds); err != nil {
			return err
		}
	}
	if needLinux {
		fmt.Fprintf(out, "running Linux-model suite (7 workloads x 8 configs x %d seed(s))...\n", max(1, nseeds))
		if linuxSuite, err = experiments.RunSuiteSeeds(linuxP, seeds); err != nil {
			return err
		}
	}

	show := func(n int) bool { return all || fig == n }
	if show(1) {
		if err := experiments.Fig1(out); err != nil {
			return err
		}
	}
	if show(2) {
		if err := experiments.Fig2(out); err != nil {
			return err
		}
	}
	if show(3) {
		if err := experiments.Fig3(out); err != nil {
			return err
		}
	}
	if show(4) {
		experiments.Fig4(out)
	}
	if show(5) {
		fmt.Fprintln(out, "\n================ Figure 5 ================")
		experiments.FigPerformance(out, simP, simSuite)
	}
	if show(6) {
		fmt.Fprintln(out, "\n================ Figure 6 ================")
		experiments.FigPerWorker(out, simP, simSuite, len(simP.FixedSizes)-1)
	}
	if show(7) {
		fmt.Fprintln(out, "\n================ Figure 7 ================")
		experiments.FigPerformance(out, linuxP, linuxSuite)
	}
	if show(8) {
		fmt.Fprintln(out, "\n================ Figure 8 ================")
		// The paper normalizes Fig. 8 to the 42-worker run (index 4).
		experiments.FigPerWorker(out, linuxP, linuxSuite, 4)
	}
	if show(9) {
		if err := experiments.Fig9(out); err != nil {
			return err
		}
	}
	if all || summary {
		fmt.Fprintln(out, "\n================ Summary ================")
		experiments.PrintSummary(out, simP, experiments.Summarize(simSuite))
		experiments.PrintSummary(out, linuxP, experiments.Summarize(linuxSuite))
	}
	if all || multiprog {
		fmt.Fprintln(out, "\n================ Multiprogrammed ================")
		rows, err := experiments.Multiprogrammed(simP.Quantum)
		if err != nil {
			return err
		}
		experiments.PrintMultiprogrammed(out, rows)
	}
	if rt { // not part of -all: wall-clock results are host-dependent
		fmt.Fprintln(out, "\n================ Real runtime ================")
		rows, err := experiments.RealRuntime(0)
		if err != nil {
			return err
		}
		experiments.PrintRealRuntime(out, rows)
	}
	if all || ablations {
		fmt.Fprintln(out, "\n================ Ablations ================")
		rows, err := experiments.AblationQuantum(simP, "bursty", []int64{5000, 20000, 50000, 200000, 800000})
		if err != nil {
			return err
		}
		experiments.PrintAblation(out, "Quantum length (palirria, bursty workload)", rows)
		rows, err = experiments.AblationL(simP, "fft", []int{-1, 0, 1, 2})
		if err != nil {
			return err
		}
		experiments.PrintAblation(out, "Threshold L = µ(O)+offset (palirria, fft workload)", rows)
		rows, err = experiments.AblationVictim(simP, "fib")
		if err != nil {
			return err
		}
		experiments.PrintAblation(out, "Victim selection at fixed 27 workers (fib workload)", rows)
		rows, err = experiments.AblationFilter(simP, "bursty")
		if err != nil {
			return err
		}
		experiments.PrintAblation(out, "False-positive filter (palirria, bursty workload)", rows)
		rows, err = experiments.AblationStealableSlots(simP, "stress", []int{1, 2, 4, 16, 64})
		if err != nil {
			return err
		}
		experiments.PrintAblation(out, "Stealable queue slots (palirria, stress workload)", rows)
		rows, err = experiments.AblationPalirriaNeedsDVS(simP, "bursty")
		if err != nil {
			return err
		}
		experiments.PrintAblation(out, "Palirria requires DVS (bursty workload; random victims are invalid per §3.2)", rows)
		rows, err = experiments.AblationEstimators(simP, "strassen")
		if err != nil {
			return err
		}
		experiments.PrintAblation(out, "Estimator families (strassen workload)", rows)
		orows, err := experiments.EstimatorOverhead(simP)
		if err != nil {
			return err
		}
		experiments.PrintOverhead(out, simP, orows)
	}
	return nil
}
