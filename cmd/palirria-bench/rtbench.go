package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"palirria/internal/serve"
	"palirria/internal/topo"
	"palirria/internal/workload"
	"palirria/internal/wsrt"
)

// wsrtBenchReport is the machine-readable output of -wsrt: the idle-path
// health metrics the CI benchmark gate tracks across commits. All
// durations are nanoseconds.
type wsrtBenchReport struct {
	// SubmitToStart quantifies the latency from Submit returning to the
	// job body executing, sampled with the runtime idle (workers parked)
	// before every submission.
	SubmitToStart struct {
		Trials int   `json:"trials"`
		P50NS  int64 `json:"p50_ns"`
		P90NS  int64 `json:"p90_ns"`
		P99NS  int64 `json:"p99_ns"`
	} `json:"submit_to_start"`
	// StealThroughput is achieved steals per second of wall time over a
	// wide fan-out batch run.
	StealThroughput struct {
		Steals       int64   `json:"steals"`
		WallNS       int64   `json:"wall_ns"`
		StealsPerSec float64 `json:"steals_per_sec"`
	} `json:"steal_throughput"`
	// IdleBurn is search and parked time accumulated across all workers
	// of an idle persistent runtime, normalized per wall-clock second.
	// SearchNSPerSec near zero means the workers genuinely park.
	IdleBurn struct {
		WindowNS       int64   `json:"window_ns"`
		Workers        int     `json:"workers"`
		SearchNSPerSec float64 `json:"search_ns_per_sec"`
		IdleNSPerSec   float64 `json:"idle_ns_per_sec"`
		Parks          int64   `json:"parks"`
	} `json:"idle_burn"`
	// SubmitThroughput is the multi-producer scaling curve for the sharded
	// injection path: contending producers pumping trivial jobs through
	// Submit, one tier per producer count. The CI gate compares tiers
	// against the committed baseline and fails on a >2x throughput drop.
	SubmitThroughput []submitThroughputTier `json:"submit_throughput"`
	// LocalitySteal is the locality-vs-flat A/B pair: the same steal-heavy
	// workload run once under a synthetic two-node locality map and once
	// under the explicit flat map (the pre-locality scheduling). The
	// locality tier's LocalShare shows how much of the steal traffic the
	// node-local-first ordering keeps on-node; the flat tier doubles as
	// the regression reference proving locality stays opt-in-safe.
	LocalitySteal []localityStealTier `json:"locality_steal"`
	// DAGWorkloads drives the registered structured-job workloads through
	// serve.Pool.SubmitDAG — dependency release riding the terminal-event
	// hook — and reports the estimator's view of each graph storm. The
	// field is additive: baselines written before it exist gate nothing.
	DAGWorkloads []dagWorkloadTier `json:"dag_workloads,omitempty"`
}

// dagWorkloadTier is one DAG workload's storm: Graphs whole graphs of
// Nodes nodes each pushed through SubmitDAG by a few producers. Peak
// desire and allotment are sampled while the storm runs, so the tier
// shows the estimation loop reacting to dependency-released work rather
// than flat submit pressure. When the tier ran more than once the
// reported numbers are the median repetition by nodes/sec.
type dagWorkloadTier struct {
	Workload           string    `json:"workload"`
	Graphs             int       `json:"graphs"`
	Nodes              int       `json:"nodes"` // per graph
	WallNS             int64     `json:"wall_ns"`
	NodesPerSec        float64   `json:"nodes_per_sec"`
	PeakDesire         int       `json:"peak_desire"`
	PeakAllotment      int       `json:"peak_allotment"`
	Capacity           int       `json:"capacity"`
	SamplesNodesPerSec []float64 `json:"samples_nodes_per_sec,omitempty"`
}

// localityStealTier is one arm of the locality A/B comparison. Steal
// counts are totals across workers; LocalShare is local/(local+remote).
// When the tier ran more than once (-bench-count) the reported numbers
// are the median repetition by jobs/sec and SamplesJobsPerSec lists
// every repetition.
type localityStealTier struct {
	Policy            string    `json:"policy"` // "locality" or "flat"
	Nodes             int       `json:"nodes"`
	Producers         int       `json:"producers"`
	Jobs              int       `json:"jobs"`
	WallNS            int64     `json:"wall_ns"`
	JobsPerSec        float64   `json:"jobs_per_sec"`
	LocalSteals       int64     `json:"local_steals"`
	RemoteSteals      int64     `json:"remote_steals"`
	LocalShare        float64   `json:"local_share"`
	SamplesJobsPerSec []float64 `json:"samples_jobs_per_sec,omitempty"`
}

// submitThroughputTier is one producer-count point on the scaling curve.
// Latencies are submit-return to job-body-start, in nanoseconds, taken
// from a 1-in-8 sample of the jobs (timing every job costs two clock
// reads plus a closure allocation per job and makes the tier measure the
// harness instead of the runtime). When the tier ran more than once
// (-bench-count), the reported numbers are the median repetition by
// jobs/sec and SamplesJobsPerSec lists every repetition.
type submitThroughputTier struct {
	Producers         int       `json:"producers"`
	Jobs              int       `json:"jobs"`
	WallNS            int64     `json:"wall_ns"`
	JobsPerSec        float64   `json:"jobs_per_sec"`
	P50NS             int64     `json:"p50_ns"`
	P99NS             int64     `json:"p99_ns"`
	LatSamples        int       `json:"lat_samples,omitempty"`
	SamplesJobsPerSec []float64 `json:"samples_jobs_per_sec,omitempty"`
}

// wsrtBench measures the real runtime's idle-path metrics and writes them
// as JSON to path (the CI artifact BENCH_wsrt.json). When baseline names a
// committed report, the multi-producer throughput tiers are gated against
// it: a tier running at less than half the baseline's jobs/sec fails the
// run. The factor-of-two slack absorbs shared-runner noise while still
// catching a serialized submit path (which collapses by far more).
// count repeats each throughput tier and reports the median repetition,
// so the gate compares medians, not single lucky or unlucky runs.
func wsrtBench(path, baseline string, count int) error {
	var rep wsrtBenchReport
	if err := benchSubmitToStart(&rep); err != nil {
		return err
	}
	if err := benchStealThroughput(&rep); err != nil {
		return err
	}
	if err := benchIdleBurn(&rep); err != nil {
		return err
	}
	if err := benchSubmitThroughput(&rep, count); err != nil {
		return err
	}
	if err := benchLocalitySteal(&rep, count); err != nil {
		return err
	}
	if err := benchDAGWorkloads(&rep, count); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wsrt idle-path benchmarks -> %s\n", path)
	fmt.Printf("  submit-to-start: p50=%s p90=%s p99=%s (%d trials)\n",
		time.Duration(rep.SubmitToStart.P50NS), time.Duration(rep.SubmitToStart.P90NS),
		time.Duration(rep.SubmitToStart.P99NS), rep.SubmitToStart.Trials)
	fmt.Printf("  steal throughput: %.0f steals/sec (%d steals over %s)\n",
		rep.StealThroughput.StealsPerSec, rep.StealThroughput.Steals,
		time.Duration(rep.StealThroughput.WallNS))
	fmt.Printf("  idle burn: search %.0f ns/sec, parked %.2e ns/sec, %d parks over %s x %d workers\n",
		rep.IdleBurn.SearchNSPerSec, rep.IdleBurn.IdleNSPerSec, rep.IdleBurn.Parks,
		time.Duration(rep.IdleBurn.WindowNS), rep.IdleBurn.Workers)
	for _, tier := range rep.SubmitThroughput {
		fmt.Printf("  submit throughput: %2d producers -> %.0f jobs/sec (p50=%s p99=%s)\n",
			tier.Producers, tier.JobsPerSec, time.Duration(tier.P50NS), time.Duration(tier.P99NS))
	}
	for _, tier := range rep.LocalitySteal {
		fmt.Printf("  locality steal [%8s]: %.0f jobs/sec, steals local=%d remote=%d (local share %.2f)\n",
			tier.Policy, tier.JobsPerSec, tier.LocalSteals, tier.RemoteSteals, tier.LocalShare)
	}
	for _, tier := range rep.DAGWorkloads {
		fmt.Printf("  dag workload [%9s]: %.0f nodes/sec over %d graphs x %d nodes, peak desire=%d allot=%d cap=%d\n",
			tier.Workload, tier.NodesPerSec, tier.Graphs, tier.Nodes,
			tier.PeakDesire, tier.PeakAllotment, tier.Capacity)
	}
	if baseline != "" {
		if err := checkBenchBaseline(&rep, baseline); err != nil {
			return err
		}
		fmt.Printf("  baseline gate: within 2x of %s\n", baseline)
	}
	return nil
}

// checkBenchBaseline compares the fresh report's throughput tiers against
// the committed baseline, matching tiers by producer count.
func checkBenchBaseline(rep *wsrtBenchReport, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("bench baseline: %w", err)
	}
	var old wsrtBenchReport
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("bench baseline %s: %w", path, err)
	}
	byProducers := make(map[int]submitThroughputTier, len(old.SubmitThroughput))
	for _, tier := range old.SubmitThroughput {
		byProducers[tier.Producers] = tier
	}
	for _, tier := range rep.SubmitThroughput {
		ref, ok := byProducers[tier.Producers]
		if !ok || ref.JobsPerSec <= 0 {
			continue
		}
		if tier.JobsPerSec*2 < ref.JobsPerSec {
			return fmt.Errorf("bench baseline: %d-producer submit throughput regressed >2x: %.0f jobs/sec vs baseline %.0f",
				tier.Producers, tier.JobsPerSec, ref.JobsPerSec)
		}
	}
	byPolicy := make(map[string]localityStealTier, len(old.LocalitySteal))
	for _, tier := range old.LocalitySteal {
		byPolicy[tier.Policy] = tier
	}
	for _, tier := range rep.LocalitySteal {
		ref, ok := byPolicy[tier.Policy]
		if !ok || ref.JobsPerSec <= 0 {
			continue
		}
		if tier.JobsPerSec*2 < ref.JobsPerSec {
			return fmt.Errorf("bench baseline: %s locality tier regressed >2x: %.0f jobs/sec vs baseline %.0f",
				tier.Policy, tier.JobsPerSec, ref.JobsPerSec)
		}
	}
	// DAG tiers match by workload name; a baseline committed before the
	// tier existed simply has no entry and gates nothing.
	byWorkload := make(map[string]dagWorkloadTier, len(old.DAGWorkloads))
	for _, tier := range old.DAGWorkloads {
		byWorkload[tier.Workload] = tier
	}
	for _, tier := range rep.DAGWorkloads {
		ref, ok := byWorkload[tier.Workload]
		if !ok || ref.NodesPerSec <= 0 {
			continue
		}
		if tier.NodesPerSec*2 < ref.NodesPerSec {
			return fmt.Errorf("bench baseline: %s DAG tier regressed >2x: %.0f nodes/sec vs baseline %.0f",
				tier.Workload, tier.NodesPerSec, ref.NodesPerSec)
		}
	}
	return nil
}

func benchSubmitToStart(rep *wsrtBenchReport) error {
	rt, err := wsrt.New(wsrt.Config{
		Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	const trials = 101
	started := make(chan int64)
	lat := make([]int64, 0, trials)
	for i := 0; i < trials; i++ {
		time.Sleep(2 * time.Millisecond) // let every worker park
		t0 := time.Now().UnixNano()
		if err := rt.Submit(func(*wsrt.Ctx) { started <- time.Now().UnixNano() }, nil); err != nil {
			return err
		}
		lat = append(lat, <-started-t0)
	}
	if _, err := rt.Shutdown(); err != nil {
		return err
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) int64 { return lat[int(p*float64(trials-1))] }
	rep.SubmitToStart.Trials = trials
	rep.SubmitToStart.P50NS = q(0.50)
	rep.SubmitToStart.P90NS = q(0.90)
	rep.SubmitToStart.P99NS = q(0.99)
	return nil
}

func benchStealThroughput(rep *wsrtBenchReport) error {
	rt, err := wsrt.New(wsrt.Config{
		Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10,
	})
	if err != nil {
		return err
	}
	r, err := rt.Run(func(c *wsrt.Ctx) {
		for j := 0; j < 512; j++ {
			c.Spawn(func(cc *wsrt.Ctx) { cc.Compute(20_000) })
		}
		c.SyncAll()
	})
	if err != nil {
		return err
	}
	var steals int64
	for _, w := range r.Workers {
		steals += w.Steals
	}
	rep.StealThroughput.Steals = steals
	rep.StealThroughput.WallNS = r.WallNS
	if r.WallNS > 0 {
		rep.StealThroughput.StealsPerSec = float64(steals) / (float64(r.WallNS) / 1e9)
	}
	return nil
}

// benchSubmitThroughput sweeps producer counts over the sharded injection
// path. Every producer hammers Submit with trivial jobs (retrying on a
// full backlog), so the tiers expose any serialization in shard selection
// or wakeup — with the legacy single channel the curve flatlines as
// producers contend on one funnel. Each tier runs count times and the
// median repetition (by jobs/sec) is reported; the per-rep rates ride
// along in the artifact so a flaky runner is visible in the numbers.
func benchSubmitThroughput(rep *wsrtBenchReport, count int) error {
	if count < 1 {
		count = 1
	}
	for _, producers := range []int{1, 4, 16, 64} {
		reps := make([]submitThroughputTier, 0, count)
		for i := 0; i < count; i++ {
			tier, err := benchSubmitTier(producers, 8000)
			if err != nil {
				return err
			}
			reps = append(reps, tier)
		}
		sort.Slice(reps, func(i, j int) bool { return reps[i].JobsPerSec < reps[j].JobsPerSec })
		tier := reps[len(reps)/2]
		if count > 1 {
			tier.SamplesJobsPerSec = make([]float64, 0, count)
			for _, r := range reps {
				tier.SamplesJobsPerSec = append(tier.SamplesJobsPerSec, r.JobsPerSec)
			}
		}
		rep.SubmitThroughput = append(rep.SubmitThroughput, tier)
	}
	return nil
}

// latStride is the latency sampling rate of a throughput tier: one job
// in latStride measures submit-to-start latency, the rest share a single
// hoisted body/onDone closure pair and pay no clock reads at all.
const latStride = 8

func benchSubmitTier(producers, jobs int) (submitThroughputTier, error) {
	tier := submitThroughputTier{Producers: producers, Jobs: jobs}
	rt, err := wsrt.New(wsrt.Config{
		Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10,
		SubmitQueueCap: 512,
	})
	if err != nil {
		return tier, err
	}
	if err := rt.Start(); err != nil {
		return tier, err
	}
	// Each producer owns a fixed row of latency slots; a sampled job
	// writes its own slot from the worker side, so no two goroutines
	// ever touch the same element.
	perProducer := jobs/producers + 1
	maxSamples := perProducer/latStride + 1
	lats := make([][]int64, producers)
	taken := make([]int, producers)
	for p := range lats {
		lats[p] = make([]int64, maxSamples)
	}
	var done sync.WaitGroup
	var submitErr atomic.Value
	t0 := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		mine := (jobs - 1 - p) / producers // jobs this producer owns beyond the first
		done.Add(mine + 1)
		go func(p, mine int) {
			defer wg.Done()
			// Hoisted: every unsampled job submits these same two values and
			// the completion count was added up front, so the steady-state
			// producer loop allocates nothing and runs no atomics of its own.
			body := func(*wsrt.Ctx) {}
			onDone := func() { done.Done() }
			row := lats[p]
			n, k := 0, 0
			for j := p; j < jobs; j += producers {
				fn := body
				if n++; n%latStride == 0 && k < len(row) {
					slot, s0 := &row[k], time.Now().UnixNano()
					fn = func(*wsrt.Ctx) { *slot = time.Now().UnixNano() - s0 }
					k++
				}
				for {
					err := rt.Submit(fn, onDone)
					if err == nil {
						break
					}
					if errors.Is(err, wsrt.ErrSubmitQueueFull) {
						runtime.Gosched()
						continue
					}
					submitErr.Store(err)
					// Give back the completions this producer will never
					// submit: n-1 jobs made it in, mine+1 were pre-added.
					done.Add(-(mine + 2 - n))
					taken[p] = k
					return
				}
			}
			taken[p] = k
		}(p, mine)
	}
	wg.Wait()
	done.Wait()
	tier.WallNS = time.Since(t0).Nanoseconds()
	if _, err := rt.Shutdown(); err != nil {
		return tier, err
	}
	if err, ok := submitErr.Load().(error); ok {
		return tier, err
	}
	if tier.WallNS > 0 {
		tier.JobsPerSec = float64(jobs) / (float64(tier.WallNS) / 1e9)
	}
	var lat []int64
	for p, row := range lats {
		lat = append(lat, row[:taken[p]]...)
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		tier.LatSamples = len(lat)
		tier.P50NS = lat[len(lat)/2]
		tier.P99NS = lat[(len(lat)-1)*99/100]
	}
	return tier, nil
}

// benchLocalitySteal runs the locality-vs-flat A/B pair: a submit-driven,
// steal-heavy workload (every job fans out children, so both shard steals
// and deque steals flow) under a synthetic two-node split of the 4x2 mesh
// versus the explicit flat map. The synthetic split makes the comparison
// meaningful on single-node CI runners — the locality arm exercises the
// biased pick and partitioned sweeps, the flat arm runs the pre-locality
// scheduling bit for bit. Each arm repeats count times; the median
// repetition by jobs/sec is reported.
func benchLocalitySteal(rep *wsrtBenchReport, count int) error {
	if count < 1 {
		count = 1
	}
	const nodes = 2
	arms := []struct {
		policy string
		loc    *topo.Locality
	}{
		{"locality", topo.SplitLocality(8, nodes)},
		{"flat", topo.FlatLocality(8)},
	}
	for _, arm := range arms {
		reps := make([]localityStealTier, 0, count)
		for i := 0; i < count; i++ {
			tier, err := benchLocalityTier(arm.policy, arm.loc)
			if err != nil {
				return err
			}
			reps = append(reps, tier)
		}
		sort.Slice(reps, func(i, j int) bool { return reps[i].JobsPerSec < reps[j].JobsPerSec })
		tier := reps[len(reps)/2]
		if count > 1 {
			tier.SamplesJobsPerSec = make([]float64, 0, count)
			for _, r := range reps {
				tier.SamplesJobsPerSec = append(tier.SamplesJobsPerSec, r.JobsPerSec)
			}
		}
		rep.LocalitySteal = append(rep.LocalitySteal, tier)
	}
	return nil
}

func benchLocalityTier(policy string, loc *topo.Locality) (localityStealTier, error) {
	const (
		producers = 8
		jobs      = 4000
		children  = 4
	)
	tier := localityStealTier{Policy: policy, Nodes: loc.NumNodes(), Producers: producers, Jobs: jobs}
	rt, err := wsrt.New(wsrt.Config{
		Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10,
		SubmitQueueCap: 512, Locality: loc,
	})
	if err != nil {
		return tier, err
	}
	if err := rt.Start(); err != nil {
		return tier, err
	}
	var done sync.WaitGroup
	done.Add(jobs)
	// Each job spawns a small fan-out with a touch of compute, so workers
	// overflow their deques and the steal paths — shard pickup and deque
	// steals alike — carry real traffic for the local/remote split.
	body := func(c *wsrt.Ctx) {
		for i := 0; i < children; i++ {
			c.Spawn(func(cc *wsrt.Ctx) { cc.Compute(2_000) })
		}
		c.SyncAll()
	}
	onDone := func() { done.Done() }
	var submitErr atomic.Value
	t0 := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		mine := (jobs - 1 - p) / producers
		go func(mine int) {
			defer wg.Done()
			for j := 0; j <= mine; j++ {
				for {
					err := rt.Submit(body, onDone)
					if err == nil {
						break
					}
					if errors.Is(err, wsrt.ErrSubmitQueueFull) {
						runtime.Gosched()
						continue
					}
					submitErr.Store(err)
					done.Add(-(mine + 1 - j))
					return
				}
			}
		}(mine)
	}
	wg.Wait()
	done.Wait()
	tier.WallNS = time.Since(t0).Nanoseconds()
	r, err := rt.Shutdown()
	if err != nil {
		return tier, err
	}
	if err, ok := submitErr.Load().(error); ok {
		return tier, err
	}
	for _, w := range r.Workers {
		tier.LocalSteals += w.LocalSteals
		tier.RemoteSteals += w.RemoteSteals
	}
	if total := tier.LocalSteals + tier.RemoteSteals; total > 0 {
		tier.LocalShare = float64(tier.LocalSteals) / float64(total)
	}
	if tier.WallNS > 0 {
		tier.JobsPerSec = float64(jobs) / (float64(tier.WallNS) / 1e9)
	}
	return tier, nil
}

// benchDAGWorkloads storms each registered DAG workload through a
// serving pool: several producers each submit whole graphs with
// SubmitDAG, so the runtime sees work arrive in dependency-released
// ripples instead of a flat stream. A sampler polls the pool's stats
// while the storm runs and keeps the peak desire and allotment the
// estimator reported — the numbers that show Palirria's estimation loop
// tracking structured parallelism. Each workload repeats count times and
// the median repetition by nodes/sec is reported.
func benchDAGWorkloads(rep *wsrtBenchReport, count int) error {
	if count < 1 {
		count = 1
	}
	for _, name := range []string{"pipeline", "mapreduce"} {
		reps := make([]dagWorkloadTier, 0, count)
		for i := 0; i < count; i++ {
			tier, err := benchDAGTier(name)
			if err != nil {
				return err
			}
			reps = append(reps, tier)
		}
		sort.Slice(reps, func(i, j int) bool { return reps[i].NodesPerSec < reps[j].NodesPerSec })
		tier := reps[len(reps)/2]
		if count > 1 {
			tier.SamplesNodesPerSec = make([]float64, 0, count)
			for _, r := range reps {
				tier.SamplesNodesPerSec = append(tier.SamplesNodesPerSec, r.NodesPerSec)
			}
		}
		rep.DAGWorkloads = append(rep.DAGWorkloads, tier)
	}
	return nil
}

func benchDAGTier(name string) (dagWorkloadTier, error) {
	const (
		graphs    = 24
		producers = 4
	)
	def, err := workload.GetDAG(name)
	if err != nil {
		return dagWorkloadTier{}, err
	}
	stages := def.Stages(workload.Simulator)
	tier := dagWorkloadTier{Workload: name, Graphs: graphs, Nodes: len(stages)}
	// The pool queue holds every concurrently-admitted node (DAG nodes
	// keep their slot until they resolve); the runtime's submit ring is
	// sized past it so dependency-released successors never bounce.
	p, err := serve.New(serve.Config{
		Name: "bench-" + name,
		Runtime: wsrt.Config{
			Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10,
			SubmitQueueCap: 1024,
		},
		QueueCap: graphs * len(stages),
	})
	if err != nil {
		return tier, err
	}
	// Sample the estimator while the storm runs: desire and allotment
	// both decay once the graphs drain, so end-of-run stats alone would
	// under-report the loop's reaction.
	stop := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		t := time.NewTicker(500 * time.Microsecond)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				st := p.Stats()
				if st.Desire > tier.PeakDesire {
					tier.PeakDesire = st.Desire
				}
				if st.Allotment > tier.PeakAllotment {
					tier.PeakAllotment = st.Allotment
				}
			}
		}
	}()
	var submitErr atomic.Value
	t0 := time.Now()
	var wg sync.WaitGroup
	for pr := 0; pr < producers; pr++ {
		wg.Add(1)
		go func(pr int) {
			defer wg.Done()
			for g := pr; g < graphs; g += producers {
				nodes := make([]serve.DAGNode, len(stages))
				for i, st := range stages {
					nodes[i] = serve.DAGNode{Fn: wsrt.SpecFunc(st.Build()), Deps: st.Deps}
				}
				errs, err := p.SubmitDAG(context.Background(), nodes)
				if err != nil {
					submitErr.Store(err)
					return
				}
				for _, e := range errs {
					if e != nil {
						submitErr.Store(e)
						return
					}
				}
			}
		}(pr)
	}
	wg.Wait()
	tier.WallNS = time.Since(t0).Nanoseconds()
	close(stop)
	sampler.Wait()
	tier.Capacity = p.Capacity()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	err = p.Drain(ctx)
	cancel()
	if err != nil {
		return tier, err
	}
	if err, ok := submitErr.Load().(error); ok {
		return tier, fmt.Errorf("dag tier %s: %w", name, err)
	}
	if tier.WallNS > 0 {
		tier.NodesPerSec = float64(graphs*len(stages)) / (float64(tier.WallNS) / 1e9)
	}
	return tier, nil
}

func benchIdleBurn(rep *wsrtBenchReport) error {
	rt, err := wsrt.New(wsrt.Config{
		Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	// Prime the steal path once, then hold the runtime idle.
	done := make(chan struct{})
	var ran atomic.Bool
	if err := rt.Submit(func(c *wsrt.Ctx) {
		for i := 0; i < 8; i++ {
			c.Spawn(func(cc *wsrt.Ctx) { cc.Compute(20_000) })
		}
		c.SyncAll()
		ran.Store(true)
	}, func() { close(done) }); err != nil {
		return err
	}
	<-done
	time.Sleep(2 * time.Millisecond) // drain the post-job spin budget
	const window = 300 * time.Millisecond
	t0 := time.Now().UnixNano()
	time.Sleep(window)
	wall := time.Now().UnixNano() - t0
	parks, _ := rt.IdleStats()
	r, err := rt.Shutdown()
	if err != nil {
		return err
	}
	var search, idle int64
	for _, w := range r.Workers {
		search += w.SearchNS
		idle += w.IdleNS
	}
	// Search/idle totals include the priming job's run-up; over a 300ms
	// window the idle phase dominates and the run-up is noise. The gate
	// watches the order of magnitude, not the last nanosecond.
	rep.IdleBurn.WindowNS = wall
	rep.IdleBurn.Workers = len(r.Workers)
	rep.IdleBurn.Parks = parks
	rep.IdleBurn.SearchNSPerSec = float64(search) / (float64(wall) / 1e9)
	rep.IdleBurn.IdleNSPerSec = float64(idle) / (float64(wall) / 1e9)
	return nil
}
