package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"palirria/internal/topo"
	"palirria/internal/wsrt"
)

// wsrtBenchReport is the machine-readable output of -wsrt: the idle-path
// health metrics the CI benchmark gate tracks across commits. All
// durations are nanoseconds.
type wsrtBenchReport struct {
	// SubmitToStart quantifies the latency from Submit returning to the
	// job body executing, sampled with the runtime idle (workers parked)
	// before every submission.
	SubmitToStart struct {
		Trials int   `json:"trials"`
		P50NS  int64 `json:"p50_ns"`
		P90NS  int64 `json:"p90_ns"`
		P99NS  int64 `json:"p99_ns"`
	} `json:"submit_to_start"`
	// StealThroughput is achieved steals per second of wall time over a
	// wide fan-out batch run.
	StealThroughput struct {
		Steals       int64   `json:"steals"`
		WallNS       int64   `json:"wall_ns"`
		StealsPerSec float64 `json:"steals_per_sec"`
	} `json:"steal_throughput"`
	// IdleBurn is search and parked time accumulated across all workers
	// of an idle persistent runtime, normalized per wall-clock second.
	// SearchNSPerSec near zero means the workers genuinely park.
	IdleBurn struct {
		WindowNS       int64   `json:"window_ns"`
		Workers        int     `json:"workers"`
		SearchNSPerSec float64 `json:"search_ns_per_sec"`
		IdleNSPerSec   float64 `json:"idle_ns_per_sec"`
		Parks          int64   `json:"parks"`
	} `json:"idle_burn"`
}

// wsrtBench measures the real runtime's idle-path metrics and writes them
// as JSON to path (the CI artifact BENCH_wsrt.json).
func wsrtBench(path string) error {
	var rep wsrtBenchReport
	if err := benchSubmitToStart(&rep); err != nil {
		return err
	}
	if err := benchStealThroughput(&rep); err != nil {
		return err
	}
	if err := benchIdleBurn(&rep); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wsrt idle-path benchmarks -> %s\n", path)
	fmt.Printf("  submit-to-start: p50=%s p90=%s p99=%s (%d trials)\n",
		time.Duration(rep.SubmitToStart.P50NS), time.Duration(rep.SubmitToStart.P90NS),
		time.Duration(rep.SubmitToStart.P99NS), rep.SubmitToStart.Trials)
	fmt.Printf("  steal throughput: %.0f steals/sec (%d steals over %s)\n",
		rep.StealThroughput.StealsPerSec, rep.StealThroughput.Steals,
		time.Duration(rep.StealThroughput.WallNS))
	fmt.Printf("  idle burn: search %.0f ns/sec, parked %.2e ns/sec, %d parks over %s x %d workers\n",
		rep.IdleBurn.SearchNSPerSec, rep.IdleBurn.IdleNSPerSec, rep.IdleBurn.Parks,
		time.Duration(rep.IdleBurn.WindowNS), rep.IdleBurn.Workers)
	return nil
}

func benchSubmitToStart(rep *wsrtBenchReport) error {
	rt, err := wsrt.New(wsrt.Config{
		Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	const trials = 101
	started := make(chan int64)
	lat := make([]int64, 0, trials)
	for i := 0; i < trials; i++ {
		time.Sleep(2 * time.Millisecond) // let every worker park
		t0 := time.Now().UnixNano()
		if err := rt.Submit(func(*wsrt.Ctx) { started <- time.Now().UnixNano() }, nil); err != nil {
			return err
		}
		lat = append(lat, <-started-t0)
	}
	if _, err := rt.Shutdown(); err != nil {
		return err
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) int64 { return lat[int(p*float64(trials-1))] }
	rep.SubmitToStart.Trials = trials
	rep.SubmitToStart.P50NS = q(0.50)
	rep.SubmitToStart.P90NS = q(0.90)
	rep.SubmitToStart.P99NS = q(0.99)
	return nil
}

func benchStealThroughput(rep *wsrtBenchReport) error {
	rt, err := wsrt.New(wsrt.Config{
		Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10,
	})
	if err != nil {
		return err
	}
	r, err := rt.Run(func(c *wsrt.Ctx) {
		for j := 0; j < 512; j++ {
			c.Spawn(func(cc *wsrt.Ctx) { cc.Compute(20_000) })
		}
		c.SyncAll()
	})
	if err != nil {
		return err
	}
	var steals int64
	for _, w := range r.Workers {
		steals += w.Steals
	}
	rep.StealThroughput.Steals = steals
	rep.StealThroughput.WallNS = r.WallNS
	if r.WallNS > 0 {
		rep.StealThroughput.StealsPerSec = float64(steals) / (float64(r.WallNS) / 1e9)
	}
	return nil
}

func benchIdleBurn(rep *wsrtBenchReport) error {
	rt, err := wsrt.New(wsrt.Config{
		Mesh: topo.MustMesh(4, 2), Source: 0, InitialDiaspora: 10,
	})
	if err != nil {
		return err
	}
	if err := rt.Start(); err != nil {
		return err
	}
	// Prime the steal path once, then hold the runtime idle.
	done := make(chan struct{})
	var ran atomic.Bool
	if err := rt.Submit(func(c *wsrt.Ctx) {
		for i := 0; i < 8; i++ {
			c.Spawn(func(cc *wsrt.Ctx) { cc.Compute(20_000) })
		}
		c.SyncAll()
		ran.Store(true)
	}, func() { close(done) }); err != nil {
		return err
	}
	<-done
	time.Sleep(2 * time.Millisecond) // drain the post-job spin budget
	const window = 300 * time.Millisecond
	t0 := time.Now().UnixNano()
	time.Sleep(window)
	wall := time.Now().UnixNano() - t0
	parks, _ := rt.IdleStats()
	r, err := rt.Shutdown()
	if err != nil {
		return err
	}
	var search, idle int64
	for _, w := range r.Workers {
		search += w.SearchNS
		idle += w.IdleNS
	}
	// Search/idle totals include the priming job's run-up; over a 300ms
	// window the idle phase dominates and the run-up is noise. The gate
	// watches the order of magnitude, not the last nanosecond.
	rep.IdleBurn.WindowNS = wall
	rep.IdleBurn.Workers = len(r.Workers)
	rep.IdleBurn.Parks = parks
	rep.IdleBurn.SearchNSPerSec = float64(search) / (float64(wall) / 1e9)
	rep.IdleBurn.IdleNSPerSec = float64(idle) / (float64(wall) / 1e9)
	return nil
}
