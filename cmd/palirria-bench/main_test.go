package main

import "testing"

// TestRunStaticFigures exercises the cheap figure paths end to end (the
// suite-driving paths are covered by the experiments package tests).
func TestRunStaticFigures(t *testing.T) {
	for _, fig := range []int{1, 2, 4, 9} {
		if err := run(fig, false, false, false, false, false, 1); err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
	}
}

func TestRunMultiprogFlag(t *testing.T) {
	if err := run(0, false, false, true, false, false, 1); err != nil {
		t.Fatal(err)
	}
}
