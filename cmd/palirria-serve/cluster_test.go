package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"palirria/internal/cluster"
)

// startClusterServer boots a palirria-serve instance in cluster mode on a
// real loopback listener (the gossip node needs its advertised address to
// be reachable before the handler is mounted).
func startClusterServer(t *testing.T, join string) (*server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.clusterAddr = "http://" + lis.Addr().String()
	opts.clusterJoin = join
	opts.gossipEvery = 20 * time.Millisecond
	s, err := newServer(opts)
	if err != nil {
		lis.Close()
		t.Fatal(err)
	}
	ts := &httptest.Server{Listener: lis, Config: &http.Server{Handler: s.handler()}}
	ts.Start()
	t.Cleanup(func() { s.close(); ts.Close() })
	return s, opts.clusterAddr
}

func clusterView(t *testing.T, addr string) cluster.View {
	t.Helper()
	resp, err := http.Get(addr + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/cluster = %d", resp.StatusCode)
	}
	v, err := cluster.DecodeView(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestServerClusterMode(t *testing.T) {
	_, addrA := startClusterServer(t, "")
	_, addrB := startClusterServer(t, addrA)

	// Both views converge on two alive members.
	for _, addr := range []string{addrA, addrB} {
		deadline := time.Now().Add(5 * time.Second)
		for {
			v := clusterView(t, addr)
			alive := 0
			for _, p := range v.Peers {
				if p.State == cluster.StateAlive {
					alive++
				}
			}
			if alive == 2 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never converged: %+v", addr, v.Peers)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Run a job on A, then check /status and /cluster tell one story:
	// both surfaces render the same pool Snapshot.
	resp, err := http.Post(addrA+"/submit?fanout=4&work=500", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit = %d", resp.StatusCode)
	}

	resp, err = http.Get(addrA + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st statusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Pools) != 1 {
		t.Fatalf("status pools = %+v", st.Pools)
	}
	snap := st.Pools[0]
	if snap.Spare != snap.Capacity-snap.Desire {
		t.Fatalf("status spare %d != capacity %d - desire %d", snap.Spare, snap.Capacity, snap.Desire)
	}

	v := clusterView(t, addrA)
	var self *cluster.PeerStatus
	for i := range v.Peers {
		if v.Peers[i].Self {
			self = &v.Peers[i]
		}
	}
	if self == nil {
		t.Fatalf("no self row in /cluster: %+v", v.Peers)
	}
	// The gossip record aggregates the same snapshot: a single-tenant
	// server's record equals its one pool's row (desire and allotment
	// move between reads, so compare against a fresh snapshot window).
	if self.QueueCap != snap.QueueCap {
		t.Fatalf("/cluster queue cap %d != /status %d", self.QueueCap, snap.QueueCap)
	}
	if self.Role != cluster.RoleServe {
		t.Fatalf("self role = %q", self.Role)
	}
	if self.Spare < 0 || self.Spare > snap.Capacity {
		t.Fatalf("self spare %d out of range (capacity %d)", self.Spare, snap.Capacity)
	}
}

func TestServerClusterDisabled(t *testing.T) {
	s, err := newServer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/cluster without cluster mode = %d, want 503", resp.StatusCode)
	}
}
