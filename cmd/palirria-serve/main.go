// palirria-serve is a long-lived serving daemon over persistent
// work-stealing pools: the paper's motivating scenario (an on-line server
// whose parallelism follows incoming load) as a runnable process.
//
// Each tenant is one serve.Pool keeping a resident runtime; jobs are
// synthetic fork/join fans submitted over HTTP and executed synchronously.
// With more than one tenant the pools share a machine model through
// serve.Tenancy, and a re-arbitration loop redistributes worker shares by
// live desire.
//
// Endpoints:
//
//	GET  /healthz                             liveness probe
//	GET  /metrics                             Prometheus text format
//	GET  /status                              pool stats + tenancy snapshot
//	GET  /cluster                             gossip membership view (cluster mode)
//	POST /gossip                              anti-entropy exchange (cluster mode)
//	GET  /events?kind=&job=&tenant=           live SSE event stream
//	POST /submit?tenant=&fanout=&work=        run one job, reply when done
//	POST /submit?count=N&...                  run N jobs via batch admission
//	POST /submit?class=&deadline=&...         priority class / start deadline
//	POST /submit-dag?workload=&tenant=&...    run one structured job graph
//	POST /drain                               drain all pools, then exit 0
//
// With -cluster-addr the daemon joins a gossip cluster: it periodically
// exchanges a signed state record (desire, allotment, spare parallelism,
// queue depth, admit p99, shed state) with its peers, publishes
// peer-up/peer-suspect/peer-dead lifecycle events on the stream hub, and
// serves the merged membership view at /cluster. A palirria-router in
// front of the cluster steers submissions toward the node advertising the
// most spare parallelism; see docs/CLUSTER.md.
//
// /events streams job lifecycle, estimator quantum, and scheduler events
// as Server-Sent Events; kind takes a comma-separated list of event
// kinds, job a single job id, tenant a pool name. Every subscriber has a
// bounded buffer (-event-buffer): a slow client loses events — announced
// by "drop" frames carrying exact counts — rather than backpressuring
// the scheduler. Comment heartbeats keep idle connections alive. The
// -sink flag additionally exports the full stream to a pluggable backend
// (jsonl:-, jsonl:/path, or prom:http://host/path) through a bounded,
// retrying spooler.
//
// Submit replies 200 on completion, 429 while the pool sheds load or its
// admission queue is full (including class sheds and unmeetable
// deadlines), 503 once draining, and 400 on bad parameters. With count >
// 1 the jobs go through Pool.SubmitBatch; the reply reports how many
// completed and how many were rejected, and the error statuses above
// apply only when nothing completed. class picks the priority class
// (low, normal, high); deadline is a duration (e.g. 50ms) the job must
// start within. Submit-dag runs one structured job — a registered DAG
// workload (pipeline, mapreduce) expanded into a dependency graph and
// admitted as a unit through Pool.SubmitDAG; the reply counts completed
// and cancelled nodes.
//
// Usage:
//
//	palirria-serve -listen :8077 -mesh 4x4 -quantum 2ms
//	palirria-serve -tenants web,batch -machine 8x4
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"palirria/internal/cluster"
	"palirria/internal/obs"
	"palirria/internal/obs/stream"
	"palirria/internal/serve"
	"palirria/internal/topo"
	"palirria/internal/workload"
	"palirria/internal/wsrt"
)

func main() {
	var opts options
	flag.StringVar(&opts.listen, "listen", ":8077", "HTTP listen address")
	flag.StringVar(&opts.mesh, "mesh", "4x4", "per-pool worker mesh, e.g. 4x4 or 8x4")
	flag.StringVar(&opts.tenants, "tenants", "default", "comma-separated pool names; more than one enables multi-tenant arbitration")
	flag.StringVar(&opts.machine, "machine", "8x4", "arbitration mesh for multi-tenant mode")
	flag.DurationVar(&opts.quantum, "quantum", 2*time.Millisecond, "estimation quantum")
	flag.DurationVar(&opts.rearbitrate, "rearbitrate", 20*time.Millisecond, "re-arbitration period (multi-tenant mode)")
	flag.IntVar(&opts.queueCap, "queue-cap", 128, "admission queue capacity per pool")
	flag.IntVar(&opts.shedQuanta, "shed-quanta", 8, "pinned quanta before the shed latch arms")
	flag.StringVar(&opts.sink, "sink", "", "export the event stream to a sink: jsonl:-, jsonl:/path, or prom:http://host/path")
	flag.DurationVar(&opts.sinkFlush, "sink-flush", time.Second, "sink spooler flush interval")
	flag.IntVar(&opts.eventBuf, "event-buffer", 1024, "per-subscriber /events buffer (events beyond it are dropped and counted)")
	flag.DurationVar(&opts.heartbeat, "heartbeat", 10*time.Second, "/events comment-heartbeat period")
	flag.StringVar(&opts.clusterAddr, "cluster-addr", "", "advertised base URL (e.g. http://10.0.0.5:8077); enables cluster gossip")
	flag.StringVar(&opts.clusterJoin, "cluster-join", "", "comma-separated seed base URLs of existing cluster members")
	flag.StringVar(&opts.clusterSecret, "cluster-secret", "", "shared HMAC secret signing gossip records (empty: unsigned)")
	flag.DurationVar(&opts.gossipEvery, "gossip", 500*time.Millisecond, "gossip exchange period (cluster mode)")
	flag.DurationVar(&opts.suspectAfter, "suspect-after", 0, "silence before a peer is suspected (default 4x gossip period)")
	flag.DurationVar(&opts.deadAfter, "dead-after", 0, "silence before a suspected peer is confirmed dead (default 10x gossip period)")
	flag.Parse()

	s, err := newServer(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "palirria-serve:", err)
		os.Exit(1)
	}
	lis, err := net.Listen("tcp", opts.listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "palirria-serve:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: s.handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(lis) //nolint:errcheck // returns ErrServerClosed on Close
	fmt.Printf("palirria-serve: listening on %s (%d tenant(s), mesh %s)\n",
		lis.Addr(), len(s.pools), opts.mesh)

	// The process lives until a successful POST /drain, then exits cleanly
	// — every admitted job has completed and every allotment is released.
	<-s.drained
	srv.Close()
	s.close()
	fmt.Println("palirria-serve: drained, exiting")
}

type options struct {
	listen      string
	mesh        string
	tenants     string
	machine     string
	quantum     time.Duration
	rearbitrate time.Duration
	queueCap    int
	shedQuanta  int
	sink        string
	sinkFlush   time.Duration
	eventBuf    int
	heartbeat   time.Duration

	clusterAddr   string
	clusterJoin   string
	clusterSecret string
	gossipEvery   time.Duration
	suspectAfter  time.Duration
	deadAfter     time.Duration
}

// server owns the pools, the optional tenancy, and the shared metrics
// registry. It is separated from main so tests can drive the HTTP surface
// without a process.
type server struct {
	reg   *obs.Registry
	names []string // tenant order, for stable /status output
	pools map[string]*serve.Pool
	ten   *serve.Tenancy // nil in single-tenant mode

	hub       *stream.Hub
	eventBuf  int
	heartbeat time.Duration
	spool     *stream.Spooler // nil without -sink
	sinkClose func() error    // releases the sink's file, if any

	node *cluster.Node // nil outside cluster mode

	drainOnce sync.Once
	drained   chan struct{}
}

// clusterRecord aggregates every pool's Snapshot into the node's gossiped
// load signal: desire, allotment, spare, and queue depth sum across
// tenants; the shed flag is any pool's latch; admit p99 is the worst
// pool's. Built on the same Snapshot the /status endpoint renders, so the
// two surfaces can never disagree.
func (s *server) clusterRecord() cluster.Record {
	var rec cluster.Record
	for _, name := range s.names {
		snap := s.pools[name].Snapshot()
		rec.Desire += snap.Desire
		rec.Allotment += snap.Allotment
		rec.Spare += snap.Spare
		rec.Queued += snap.InFlight
		rec.QueueCap += snap.QueueCap
		rec.Shed = rec.Shed || snap.Shedding
		if snap.AdmitP99 > rec.AdmitP99 {
			rec.AdmitP99 = snap.AdmitP99
		}
	}
	return rec
}

func newServer(opts options) (*server, error) {
	dims, err := parseMesh(opts.mesh)
	if err != nil {
		return nil, err
	}
	names := splitTenants(opts.tenants)
	if len(names) == 0 {
		return nil, errors.New("no tenants configured")
	}
	if opts.eventBuf <= 0 {
		opts.eventBuf = 1024
	}
	if opts.heartbeat <= 0 {
		opts.heartbeat = 10 * time.Second
	}
	s := &server{
		reg:       obs.NewRegistry(),
		names:     names,
		pools:     make(map[string]*serve.Pool, len(names)),
		hub:       stream.NewHub(),
		eventBuf:  opts.eventBuf,
		heartbeat: opts.heartbeat,
		drained:   make(chan struct{}),
	}
	s.hub.Register(s.reg)
	if opts.sink != "" {
		sink, closer, err := stream.ParseSink(opts.sink)
		if err != nil {
			return nil, err
		}
		s.sinkClose = closer
		s.spool = stream.NewSpooler(s.hub, sink, stream.SpoolConfig{FlushEvery: opts.sinkFlush})
	}
	for _, name := range names {
		mesh, err := topo.NewMesh(dims...)
		if err != nil {
			return nil, err
		}
		p, err := serve.New(serve.Config{
			Name: name,
			Runtime: wsrt.Config{
				Mesh:    mesh,
				Quantum: opts.quantum,
				Metrics: s.reg,
			},
			QueueCap:   opts.queueCap,
			ShedQuanta: opts.shedQuanta,
			Metrics:    s.reg,
			Events:     s.hub,
		})
		if err != nil {
			s.close()
			return nil, fmt.Errorf("pool %q: %w", name, err)
		}
		s.pools[name] = p
	}
	if len(names) > 1 {
		mdims, err := parseMesh(opts.machine)
		if err != nil {
			s.close()
			return nil, err
		}
		machine, err := topo.NewMesh(mdims...)
		if err != nil {
			s.close()
			return nil, err
		}
		s.ten = serve.NewTenancy(machine, opts.rearbitrate)
		// Spread the tenants' source cores across the machine so their
		// seed zones do not collide.
		usable := machine.Usable()
		for i, name := range names {
			src := topo.CoreID(i * usable / len(names))
			if err := s.ten.Attach(s.pools[name], src); err != nil {
				s.close()
				return nil, fmt.Errorf("attach %q: %w", name, err)
			}
		}
		s.ten.Start()
	}
	if opts.clusterAddr != "" {
		node, err := cluster.NewNode(cluster.Config{
			Addr:         opts.clusterAddr,
			Role:         cluster.RoleServe,
			Secret:       opts.clusterSecret,
			Snapshot:     s.clusterRecord,
			Join:         splitTenants(opts.clusterJoin),
			Interval:     opts.gossipEvery,
			SuspectAfter: opts.suspectAfter,
			DeadAfter:    opts.deadAfter,
			Events:       s.hub,
			Metrics:      s.reg,
		})
		if err != nil {
			s.close()
			return nil, err
		}
		s.node = node
		node.Start()
	}
	return s, nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/metrics", s.reg.Handler())
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/submit", s.handleSubmit)
	mux.HandleFunc("/submit-dag", s.handleSubmitDAG)
	mux.HandleFunc("/drain", s.handleDrain)
	if s.node != nil {
		mux.HandleFunc("/gossip", s.node.GossipHandler())
		mux.HandleFunc("/cluster", s.node.ClusterHandler())
	} else {
		mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "cluster mode disabled (start with -cluster-addr)",
				http.StatusServiceUnavailable)
		})
	}
	return mux
}

// submitReply is the /submit response body. The batch fields are only set
// when the request carried count > 1.
type submitReply struct {
	Tenant    string `json:"tenant"`
	Fanout    int    `json:"fanout"`
	Work      int    `json:"work"`
	Count     int    `json:"count,omitempty"`
	Completed int    `json:"completed,omitempty"`
	Rejected  int    `json:"rejected,omitempty"`
	LatencyNS int64  `json:"latency_ns"`
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	tenant := q.Get("tenant")
	if tenant == "" {
		tenant = s.names[0]
	}
	p, ok := s.pools[tenant]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown tenant %q", tenant), http.StatusNotFound)
		return
	}
	fanout, err := intParam(q.Get("fanout"), 64)
	if err != nil || fanout < 1 || fanout > 1<<20 {
		http.Error(w, "bad fanout", http.StatusBadRequest)
		return
	}
	work, err := intParam(q.Get("work"), 20_000)
	if err != nil || work < 0 || work > 1<<30 {
		http.Error(w, "bad work", http.StatusBadRequest)
		return
	}
	count, err := intParam(q.Get("count"), 1)
	if err != nil || count < 1 || count > 1<<14 {
		http.Error(w, "bad count", http.StatusBadRequest)
		return
	}
	class, deadline, perr := classDeadlineParams(q)
	if perr != nil {
		http.Error(w, perr.Error(), http.StatusBadRequest)
		return
	}
	if count > 1 && (class != serve.ClassLow || !deadline.IsZero()) {
		// Batch admission is low-class and deadline-free by contract.
		http.Error(w, "class/deadline require count=1", http.StatusBadRequest)
		return
	}
	start := time.Now()
	if count > 1 {
		fns := make([]wsrt.Func, count)
		for i := range fns {
			fns[i] = fanJob(fanout, work)
		}
		var completed int
		var firstErr error
		for _, err := range p.SubmitBatch(r.Context(), fns) {
			if err == nil {
				completed++
			} else if firstErr == nil {
				firstErr = err
			}
		}
		if completed == 0 {
			switch {
			case errors.Is(firstErr, serve.ErrQueueFull), errors.Is(firstErr, serve.ErrOverloaded):
				http.Error(w, firstErr.Error(), http.StatusTooManyRequests)
			case errors.Is(firstErr, serve.ErrDraining), errors.Is(firstErr, serve.ErrDiscarded):
				http.Error(w, firstErr.Error(), http.StatusServiceUnavailable)
			default: // context cancellation: the client went away
				http.Error(w, firstErr.Error(), http.StatusRequestTimeout)
			}
			return
		}
		writeJSON(w, http.StatusOK, submitReply{
			Tenant: tenant, Fanout: fanout, Work: work,
			Count: count, Completed: completed, Rejected: count - completed,
			LatencyNS: time.Since(start).Nanoseconds(),
		})
		return
	}
	jb := serve.Job{Fn: fanJob(fanout, work), Class: class, Deadline: deadline}
	switch err := p.SubmitJob(r.Context(), jb); {
	case err == nil:
		writeJSON(w, http.StatusOK, submitReply{
			Tenant: tenant, Fanout: fanout, Work: work,
			LatencyNS: time.Since(start).Nanoseconds(),
		})
	case errors.Is(err, serve.ErrQueueFull), errors.Is(err, serve.ErrOverloaded),
		errors.Is(err, serve.ErrDeadline):
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, serve.ErrDraining), errors.Is(err, serve.ErrDiscarded):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default: // context cancellation: the client went away
		http.Error(w, err.Error(), http.StatusRequestTimeout)
	}
}

// classDeadlineParams parses the shared class= and deadline= query
// parameters: class names a priority class (empty keeps the low default),
// deadline is a positive duration the job must start within.
func classDeadlineParams(q url.Values) (serve.Class, time.Time, error) {
	class, ok := serve.ParseClass(q.Get("class"))
	if !ok {
		return 0, time.Time{}, fmt.Errorf("bad class %q (want low, normal or high)", q.Get("class"))
	}
	var deadline time.Time
	if ds := q.Get("deadline"); ds != "" {
		d, err := time.ParseDuration(ds)
		if err != nil || d <= 0 {
			return 0, time.Time{}, fmt.Errorf("bad deadline %q (want a positive duration)", ds)
		}
		deadline = time.Now().Add(d)
	}
	return class, deadline, nil
}

// submitDAGReply is the /submit-dag response body.
type submitDAGReply struct {
	Tenant    string `json:"tenant"`
	Workload  string `json:"workload"`
	Nodes     int    `json:"nodes"`
	Completed int    `json:"completed"`
	Cancelled int    `json:"cancelled"`
	LatencyNS int64  `json:"latency_ns"`
}

// handleSubmitDAG expands a registered DAG workload into a dependency
// graph and runs it as one structured job: nodes are admitted as a unit,
// released as their predecessors complete, and the reply reports how the
// graph resolved. The class and deadline parameters apply to every node.
func (s *server) handleSubmitDAG(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	tenant := q.Get("tenant")
	if tenant == "" {
		tenant = s.names[0]
	}
	p, ok := s.pools[tenant]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown tenant %q", tenant), http.StatusNotFound)
		return
	}
	name := q.Get("workload")
	if name == "" {
		name = "pipeline"
	}
	def, err := workload.GetDAG(name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	work, err := intParam(q.Get("work"), 0)
	if err != nil || work < 0 || work > 1<<30 {
		http.Error(w, "bad work", http.StatusBadRequest)
		return
	}
	class, deadline, perr := classDeadlineParams(q)
	if perr != nil {
		http.Error(w, perr.Error(), http.StatusBadRequest)
		return
	}
	in := def.Inputs[workload.Simulator]
	if work > 0 {
		in.Grain = int64(work)
	}
	stages := def.Build(in)
	nodes := make([]serve.DAGNode, len(stages))
	for i, st := range stages {
		nodes[i] = serve.DAGNode{
			Fn:       wsrt.SpecFunc(st.Build()),
			Deps:     st.Deps,
			Class:    class,
			Deadline: deadline,
		}
	}
	start := time.Now()
	errs, err := p.SubmitDAG(r.Context(), nodes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var completed, cancelled int
	var firstErr error
	for _, e := range errs {
		if e == nil {
			completed++
		} else {
			cancelled++
			if firstErr == nil {
				firstErr = e
			}
		}
	}
	if completed == 0 && firstErr != nil {
		switch {
		case errors.Is(firstErr, serve.ErrQueueFull), errors.Is(firstErr, serve.ErrOverloaded),
			errors.Is(firstErr, serve.ErrDeadline):
			http.Error(w, firstErr.Error(), http.StatusTooManyRequests)
		case errors.Is(firstErr, serve.ErrDraining), errors.Is(firstErr, serve.ErrDiscarded):
			http.Error(w, firstErr.Error(), http.StatusServiceUnavailable)
		default: // context cancellation: the client went away
			http.Error(w, firstErr.Error(), http.StatusRequestTimeout)
		}
		return
	}
	writeJSON(w, http.StatusOK, submitDAGReply{
		Tenant: tenant, Workload: name, Nodes: len(nodes),
		Completed: completed, Cancelled: cancelled,
		LatencyNS: time.Since(start).Nanoseconds(),
	})
}

// handleEvents streams the hub over Server-Sent Events. Each event goes
// out as an "id:"/"event:"/"data:" frame (id = hub sequence number,
// event = kind name, data = the JSON event); whenever the subscription
// has dropped more events since the last frame, a "drop" frame reports
// the delta and running total; comment heartbeats mark liveness. A
// client that stops reading wedges only its own handler goroutine — the
// hub keeps dropping (and counting) past the bounded buffer.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	q := r.URL.Query()
	var kinds []stream.Kind
	if ks := q.Get("kind"); ks != "" {
		for _, part := range strings.Split(ks, ",") {
			k, ok := stream.ParseKind(strings.TrimSpace(part))
			if !ok {
				http.Error(w, fmt.Sprintf("unknown kind %q", part), http.StatusBadRequest)
				return
			}
			kinds = append(kinds, k)
		}
	}
	var jobID uint64
	if js := q.Get("job"); js != "" {
		v, err := strconv.ParseUint(js, 10, 64)
		if err != nil || v == 0 {
			http.Error(w, "bad job id", http.StatusBadRequest)
			return
		}
		jobID = v
	}
	pool := q.Get("tenant")
	if pool != "" {
		if _, ok := s.pools[pool]; !ok {
			http.Error(w, fmt.Sprintf("unknown tenant %q", pool), http.StatusNotFound)
			return
		}
	}
	sub := s.hub.Subscribe(stream.SubOptions{
		Buf: s.eventBuf, Kinds: kinds, Job: jobID, Pool: pool,
	})
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": palirria-serve event stream\n\n")
	fl.Flush()

	hb := time.NewTicker(s.heartbeat)
	defer hb.Stop()
	var reported int64
	dropFrame := func() {
		if d := sub.Dropped(); d > reported {
			fmt.Fprintf(w, "event: drop\ndata: {\"dropped\":%d,\"total\":%d}\n\n",
				d-reported, d)
			reported = d
		}
	}
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return // hub closed: server shutting down
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
			dropFrame()
			fl.Flush()
		case <-hb.C:
			fmt.Fprintf(w, ": heartbeat\n\n")
			dropFrame()
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// statusReply is the /status response body. Pools carries the same
// serve.Snapshot records the cluster layer gossips, so /status and
// /cluster can never disagree about a pool's load.
type statusReply struct {
	Pools     []serve.Snapshot     `json:"pools"`
	Tenants   []serve.TenantStatus `json:"tenants,omitempty"`
	FreeCores int                  `json:"free_cores,omitempty"`
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	var rep statusReply
	for _, name := range s.names {
		rep.Pools = append(rep.Pools, s.pools[name].Snapshot())
	}
	if s.ten != nil {
		rep.Tenants = s.ten.Snapshot()
		rep.FreeCores = s.ten.FreeCores()
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(s.names))
	for i, name := range s.names {
		wg.Add(1)
		go func(i int, p *serve.Pool) {
			defer wg.Done()
			errs[i] = p.Drain(ctx)
		}(i, s.pools[name])
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			http.Error(w, fmt.Sprintf("drain %q: %v", s.names[i], err),
				http.StatusInternalServerError)
			return
		}
	}
	var rep statusReply
	for _, name := range s.names {
		rep.Pools = append(rep.Pools, s.pools[name].Snapshot())
	}
	writeJSON(w, http.StatusOK, rep)
	s.drainOnce.Do(func() { close(s.drained) })
}

// close releases whatever newServer built; pools that never drained are
// drained with a short grace period. The hub closes last so the drains'
// terminal events still reach the sink before its final flush.
func (s *server) close() {
	if s.node != nil {
		s.node.Stop()
	}
	if s.ten != nil {
		s.ten.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, p := range s.pools {
		p.Drain(ctx) //nolint:errcheck // best-effort teardown
	}
	if s.spool != nil {
		s.spool.Close()
	}
	if s.sinkClose != nil {
		s.sinkClose() //nolint:errcheck // best-effort teardown
	}
	s.hub.Close()
}

// fanJob builds the synthetic serving workload: a binary fan of n leaves,
// each computing work synthetic cycles.
func fanJob(n, work int) wsrt.Func {
	var fan func(c *wsrt.Ctx, n int)
	fan = func(c *wsrt.Ctx, n int) {
		if n <= 1 {
			c.Compute(int64(work))
			return
		}
		c.Spawn(func(cc *wsrt.Ctx) { fan(cc, n/2) })
		fan(c, n-n/2)
		c.Sync()
	}
	return func(c *wsrt.Ctx) { fan(c, n) }
}

// parseMesh turns "4x4" or "8x4x2" into mesh extents.
func parseMesh(s string) ([]int, error) {
	parts := strings.Split(strings.ToLower(strings.TrimSpace(s)), "x")
	if len(parts) < 1 || len(parts) > 3 {
		return nil, fmt.Errorf("bad mesh %q: want DXxDY or DXxDYxDZ", s)
	}
	dims := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad mesh %q: dimension %q", s, p)
		}
		dims[i] = v
	}
	return dims, nil
}

func splitTenants(s string) []string {
	var names []string
	seen := map[string]bool{}
	for _, n := range strings.Split(s, ",") {
		n = strings.TrimSpace(n)
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		names = append(names, n)
	}
	return names
}

func intParam(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client went away
}
