package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testOptions() options {
	return options{
		mesh:        "4x2",
		tenants:     "default",
		machine:     "4x4",
		quantum:     time.Millisecond,
		rearbitrate: 5 * time.Millisecond,
		queueCap:    16,
		shedQuanta:  8,
	}
}

func TestParseMesh(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []int
		ok   bool
	}{
		{"4x4", []int{4, 4}, true},
		{"8x4x2", []int{8, 4, 2}, true},
		{"16", []int{16}, true},
		{" 4X4 ", []int{4, 4}, true},
		{"", nil, false},
		{"4x0", nil, false},
		{"axb", nil, false},
		{"1x2x3x4", nil, false},
	} {
		got, err := parseMesh(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseMesh(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if !tc.ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("parseMesh(%q) = %v, want %v", tc.in, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("parseMesh(%q) = %v, want %v", tc.in, got, tc.want)
			}
		}
	}
}

func TestServerSingleTenant(t *testing.T) {
	s, err := newServer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %v %v", resp, err)
	}
	resp.Body.Close()

	// A small job completes synchronously.
	resp, err = http.Post(ts.URL+"/submit?fanout=8&work=1000", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep submitReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Tenant != "default" || rep.Fanout != 8 {
		t.Fatalf("submit = %d %+v", resp.StatusCode, rep)
	}

	// Parameter validation and routing.
	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/submit", http.StatusMethodNotAllowed},
		{http.MethodPost, "/submit?fanout=-1", http.StatusBadRequest},
		{http.MethodPost, "/submit?work=abc", http.StatusBadRequest},
		{http.MethodPost, "/submit?tenant=nope", http.StatusNotFound},
		{http.MethodPost, "/submit?count=0", http.StatusBadRequest},
		{http.MethodPost, "/submit?count=abc", http.StatusBadRequest},
		{http.MethodGet, "/drain", http.StatusMethodNotAllowed},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}

	// Status reports the pool; metrics render.
	resp, err = http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st statusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Pools) != 1 || st.Pools[0].Name != "default" || st.Pools[0].Completed != 1 {
		t.Fatalf("status = %+v", st)
	}
	if len(st.Tenants) != 0 {
		t.Fatalf("single-tenant status must omit tenancy: %+v", st.Tenants)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if !strings.Contains(body, `palirria_pool_completed_total{pool="default"} 1`) {
		t.Fatalf("metrics missing completion counter:\n%s", body)
	}

	// Drain: replies a final summary, unblocks the exit channel, and
	// subsequent submissions are refused.
	resp, err = http.Post(ts.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain = %d", resp.StatusCode)
	}
	select {
	case <-s.drained:
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not signal process exit")
	}
	resp, err = http.Post(ts.URL+"/submit", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain = %d, want 503", resp.StatusCode)
	}
}

func TestServerBatchSubmit(t *testing.T) {
	s, err := newServer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/submit?fanout=4&work=500&count=6", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rep submitReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch submit = %d", resp.StatusCode)
	}
	if rep.Count != 6 || rep.Completed != 6 || rep.Rejected != 0 {
		t.Fatalf("batch reply = %+v, want count=6 completed=6", rep)
	}

	var st statusReply
	resp, err = http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Pools[0].Admitted != 6 || st.Pools[0].Completed != 6 {
		t.Fatalf("pool stats after batch = %+v", st.Pools[0])
	}

	resp, err = http.Post(ts.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/submit?count=3", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("batch submit after drain = %d, want 503", resp.StatusCode)
	}
}

func TestServerMultiTenant(t *testing.T) {
	opts := testOptions()
	opts.tenants = "web, batch,web" // duplicate and whitespace are cleaned
	s, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for _, tenant := range []string{"web", "batch"} {
		resp, err := http.Post(ts.URL+"/submit?tenant="+tenant+"&fanout=4&work=500", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %s = %d", tenant, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st statusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Pools) != 2 || len(st.Tenants) != 2 {
		t.Fatalf("status = %+v", st)
	}
	total := st.FreeCores
	for _, tn := range st.Tenants {
		if tn.Share < 1 {
			t.Fatalf("tenant %q has no share", tn.Name)
		}
		total += tn.Share
	}
	if total != 16 { // 4x4 machine
		t.Fatalf("shares + free = %d, want 16", total)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// TestServerEventsSSE drives a live SSE subscription end to end: frames
// must be well-formed (id/event/data), carry JSON bodies, and include
// the submitted job's admitted and completed lifecycle events.
func TestServerEventsSSE(t *testing.T) {
	opts := testOptions()
	opts.heartbeat = 25 * time.Millisecond
	s, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/events?kind=admitted,completed", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Submit once the subscription is live.
	go func() {
		r, err := http.Post(ts.URL+"/submit?fanout=4&work=500", "", nil)
		if err == nil {
			r.Body.Close()
		}
	}()

	seen := map[string]bool{}
	var sawHeartbeat bool
	sc := bufio.NewScanner(resp.Body)
	var id, event, data string
	for sc.Scan() && !(seen["admitted"] && seen["completed"] && sawHeartbeat) {
		line := sc.Text()
		switch {
		case line == "":
			if event != "" {
				if id == "" || data == "" {
					t.Fatalf("frame %q missing id or data", event)
				}
				var ev map[string]any
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("data not JSON: %q", data)
				}
				if ev["kind"] != event {
					t.Fatalf("data kind %v != event name %q", ev["kind"], event)
				}
				if event == "admitted" || event == "completed" {
					if ev["job"] != float64(1) {
						t.Fatalf("job id = %v, want 1", ev["job"])
					}
					seen[event] = true
				}
			}
			id, event, data = "", "", ""
		case strings.HasPrefix(line, ": "):
			sawHeartbeat = true
		case strings.HasPrefix(line, "id: "):
			id = line[4:]
		case strings.HasPrefix(line, "event: "):
			event = line[7:]
		case strings.HasPrefix(line, "data: "):
			data = line[6:]
		default:
			t.Fatalf("malformed SSE line %q", line)
		}
	}
	if !seen["admitted"] || !seen["completed"] || !sawHeartbeat {
		t.Fatalf("stream ended early: seen=%v heartbeat=%v (%v)", seen, sawHeartbeat, sc.Err())
	}
}

func TestServerEventsValidation(t *testing.T) {
	s, err := newServer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for _, tc := range []struct {
		path string
		want int
	}{
		{"/events?kind=bogus", http.StatusBadRequest},
		{"/events?job=abc", http.StatusBadRequest},
		{"/events?job=0", http.StatusBadRequest},
		{"/events?tenant=nope", http.StatusNotFound},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestServerJSONLSink runs the full path flag -> ParseSink -> Spooler ->
// file: after a submit and close, the file holds the lifecycle events.
func TestServerJSONLSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	opts := testOptions()
	opts.sink = "jsonl:" + path
	opts.sinkFlush = 10 * time.Millisecond
	s, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	resp, err := http.Post(ts.URL+"/submit?fanout=4&work=500", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	ts.Close()
	s.close() // flushes the spooler

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var admitted, completed bool
	for _, line := range strings.Split(strings.TrimSpace(string(b)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("sink line not JSON: %q", line)
		}
		switch ev["kind"] {
		case "admitted":
			admitted = true
		case "completed":
			completed = true
		}
	}
	if !admitted || !completed {
		t.Fatalf("sink file missing lifecycle events:\n%s", b)
	}
}

// TestServerSubmitDAG runs both registered DAG workloads through
// /submit-dag end to end: every node must complete, the reply must count
// them, and the pool ledger must show the whole graph admitted.
func TestServerSubmitDAG(t *testing.T) {
	opts := testOptions()
	opts.queueCap = 64 // mapreduce admits 18 nodes as a unit
	s, err := newServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	wantNodes := map[string]int{"pipeline": 6, "mapreduce": 18}
	total := 0
	for _, name := range []string{"pipeline", "mapreduce"} {
		resp, err := http.Post(ts.URL+"/submit-dag?workload="+name+"&work=500&class=high", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		var rep submitDAGReply
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("submit-dag %s = %d", name, resp.StatusCode)
		}
		if rep.Workload != name || rep.Nodes != wantNodes[name] ||
			rep.Completed != rep.Nodes || rep.Cancelled != 0 {
			t.Fatalf("submit-dag %s reply = %+v", name, rep)
		}
		total += rep.Nodes
	}

	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st statusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Pools[0].Admitted != int64(total) || st.Pools[0].Completed != int64(total) {
		t.Fatalf("pool stats after DAGs = %+v, want %d admitted+completed", st.Pools[0], total)
	}
}

func TestServerSubmitDAGValidation(t *testing.T) {
	s, err := newServer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/submit-dag", http.StatusMethodNotAllowed},
		{http.MethodPost, "/submit-dag?workload=nope", http.StatusBadRequest},
		{http.MethodPost, "/submit-dag?work=-1", http.StatusBadRequest},
		{http.MethodPost, "/submit-dag?class=urgent", http.StatusBadRequest},
		{http.MethodPost, "/submit-dag?deadline=-5ms", http.StatusBadRequest},
		{http.MethodPost, "/submit-dag?deadline=soon", http.StatusBadRequest},
		{http.MethodPost, "/submit-dag?tenant=nope", http.StatusNotFound},
		// class/deadline are shared with /submit; a batch cannot carry them.
		{http.MethodPost, "/submit?count=2&class=high", http.StatusBadRequest},
		{http.MethodPost, "/submit?count=2&deadline=1s", http.StatusBadRequest},
		{http.MethodPost, "/submit?class=urgent", http.StatusBadRequest},
		{http.MethodPost, "/submit?deadline=0s", http.StatusBadRequest},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}

	// A generous deadline on a single job is accepted and the job runs.
	resp, err := http.Post(ts.URL+"/submit?fanout=4&work=500&class=normal&deadline=30s", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadline submit = %d", resp.StatusCode)
	}

	// Draining refuses whole graphs with 503 like plain submits.
	resp, err = http.Post(ts.URL+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/submit-dag", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit-dag after drain = %d, want 503", resp.StatusCode)
	}
}

func TestServerStatusHasAdmitQuantiles(t *testing.T) {
	s, err := newServer(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	for i := 0; i < 5; i++ {
		resp, err := http.Post(ts.URL+"/submit?fanout=4&work=500", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	var st statusReply
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	p := st.Pools[0]
	if p.AdmitP50 <= 0 || p.AdmitP99 <= 0 || p.AdmitP50 > p.AdmitP99 {
		t.Fatalf("admit quantiles p50=%g p99=%g", p.AdmitP50, p.AdmitP99)
	}
}
